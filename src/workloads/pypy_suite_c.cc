/**
 * @file
 * PyPy-suite workloads, part C: search/solver, bignum, and
 * data-structure-intensive benchmarks.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

std::vector<Workload>
pypySuiteC()
{
    std::vector<Workload> out;

    out.push_back({
        "hexiom2", "pypy",
        R"PY(
def neighbors(cell, width):
    out = []
    if cell % width > 0:
        out.append(cell - 1)
    if cell % width < width - 1:
        out.append(cell + 1)
    if cell >= width:
        out.append(cell - width)
    return out

def solve(board, targets, pos, width, depth):
    if depth == 0 or pos >= len(board):
        score = 0
        i = 0
        while i < len(board):
            n = 0
            for nb in neighbors(i, width):
                n += board[nb]
            if n == targets[i]:
                score += 1
            i += 1
        return score
    best = 0
    v = 0
    while v < 2:
        board[pos] = v
        s = solve(board, targets, pos + 1, width, depth - 1)
        if s > best:
            best = s
        v += 1
    board[pos] = 0
    return best

width = 4
board = []
targets = []
i = 0
while i < width * width:
    board.append(0)
    targets.append(i * 7 % 3)
    i += 1
total = 0
r = 0
while r < {N}:
    total += solve(board, targets, 0, width, 9)
    r += 1
print(total)
)PY",
        "",
        "hexiom2: puzzle solver; deep recursion, int-list "
        "IntegerListStrategy.safe_find-style scans (Table III 10.8%)",
        10, ""});

    out.push_back({
        "meteor_contest", "pypy",
        R"PY(
masks = []
i = 0
while i < 40:
    s = set()
    k = 0
    while k < 6:
        s.add((i * 5 + k * 3) % 50)
        k += 1
    masks.append(s)
    i += 1

free = set()
i = 0
while i < 50:
    free.add(i)
    i += 1

solutions = 0
r = 0
while r < {N}:
    i = 0
    while i < len(masks):
        m = masks[i]
        if m.issubset(free):
            remaining = free.difference(m)
            j = i + 1
            while j < len(masks):
                if masks[j].issubset(remaining):
                    solutions += 1
                j += 1
        i += 1
    r += 1
print(solutions)
)PY",
        "",
        "meteor_contest: piece placement; BytesSetStrategy.difference/"
        "issubset dominate (Table III 35.4% + 22.2%)",
        25, ""});

    out.push_back({
        "fannkuch", "pypy",
        R"PY(
def fannkuch(n):
    perm1 = []
    i = 0
    while i < n:
        perm1.append(i)
        i += 1
    count = []
    i = 0
    while i < n:
        count.append(0)
        i += 1
    maxFlips = 0
    checksum = 0
    r = n
    sign = 1
    while True:
        if perm1[0] != 0:
            perm = perm1[0:n]
            flips = 0
            k = perm[0]
            while k != 0:
                sub = perm[0:k + 1]
                sub.reverse()
                perm[0:k + 1] = sub
                flips += 1
                k = perm[0]
            if flips > maxFlips:
                maxFlips = flips
            checksum += sign * flips
        sign = 0 - sign
        r = 1
        while True:
            if r == n:
                return maxFlips * 100000 + checksum % 100000
            first = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i += 1
            perm1[r] = first
            count[r] += 1
            if count[r] <= r:
                break
            count[r] = 0
            r += 1

print(fannkuch({N}))
)PY",
        "",
        "fannkuch: pancake flipping; IntegerListStrategy.setslice + "
        "fill_in_with_sliced (Table III 20.0% + 15.9%)",
        7, ""});

    out.push_back({
        "pidigits", "pypy",
        R"PY(
def pi_digits(n):
    q = 1
    r = 0
    t = 1
    k = 1
    digits = 0
    out = 0
    while digits < n:
        if 4 * q + r - t < (1 + 2 * q + r) // t * t:
            out = (out * 10 + (3 * q + r) // t) % 1000000007
            nr = 10 * (r - (3 * q + r) // t * t)
            q = 10 * q
            r = nr
            digits += 1
        else:
            nr = (2 * q + r) * (2 * k + 1)
            nt = t * (2 * k + 1)
            q = q * k
            r = nr
            t = nt
            k += 1
    return out

print(pi_digits({N}))
)PY",
        "",
        "pidigits: spigot with unbounded integers; rbigint.add/divmod/"
        "mul dominate as AOT calls (Table III 36.1%+33.2%+...)",
        130, ""});

    out.push_back({
        "pyflate_fast", "pypy",
        R"PY(
class BitReader:
    def __init__(self, data):
        self.data = data
        self.pos = 0
        self.bit = 0
        self.cur = 0

    def readbit(self):
        if self.bit == 0:
            self.cur = ord(self.data[self.pos])
            self.pos += 1
            self.bit = 8
        b = self.cur & 1
        self.cur = self.cur >> 1
        self.bit -= 1
        return b

    def readbits(self, n):
        v = 0
        i = 0
        while i < n:
            v = v | (self.readbit() << i)
            i += 1
        return v

data_parts = []
i = 0
while i < 120:
    data_parts.append(chr((i * 37 + 11) % 256))
    i += 1
data = "".join(data_parts)

total = 0
r = 0
while r < {N}:
    br = BitReader(data)
    symbols = []
    while br.pos < len(br.data) - 2:
        symbols.append(br.readbits(3 + r % 3))
    total += len(symbols) + symbols[0]
    r += 1
print(total)
)PY",
        "",
        "pyflate-fast: bit-stream decoding; strgetitem + shifts + "
        "BytesListStrategy appends (Table III ll_find_char/setslice)",
        90, ""});

    out.push_back({
        "spambayes", "pypy",
        R"PY(
ham_counts = {}
spam_counts = {}

def train(words, counts):
    for w in words:
        c = counts.get(w, 0)
        counts[w] = c + 1

def score(words):
    p = 1.0
    for w in words:
        h = ham_counts.get(w, 0) + 1
        s = spam_counts.get(w, 0) + 1
        p = p * (s * 1.0 / (h + s))
        if p < 0.000001:
            p = p * 1000000.0
    return p

vocab = []
i = 0
while i < 80:
    vocab.append("word" + str(i))
    i += 1

i = 0
while i < {N}:
    msg = []
    k = 0
    while k < 12:
        msg.append(vocab[(i * 7 + k * 3) % 80])
        k += 1
    if i % 3 == 0:
        train(msg, spam_counts)
    else:
        train(msg, ham_counts)
    i += 1

spammy = 0
i = 0
while i < {N}:
    msg = []
    k = 0
    while k < 12:
        msg.append(vocab[(i * 11 + k) % 80])
        k += 1
    if score(msg) < 0.5:
        spammy += 1
    i += 1
print(spammy)
)PY",
        "",
        "spambayes: Bayesian token scoring; string-keyed dict lookups "
        "+ float products (dict-lookup bound per Table III)",
        280, ""});

    out.push_back({
        "go", "pypy",
        R"PY(
SIZE = 9

def flood(board, pos, color, seen):
    stack = [pos]
    group = []
    libs = 0
    while len(stack) > 0:
        p = stack.pop()
        if p in seen:
            continue
        seen.add(p)
        group.append(p)
        for d in [0 - 1, 1, 0 - SIZE, SIZE]:
            q = p + d
            if q < 0 or q >= SIZE * SIZE:
                continue
            v = board[q]
            if v == 0:
                libs += 1
            elif v == color and q not in seen:
                stack.append(q)
    return libs + len(group)

board = []
i = 0
while i < SIZE * SIZE:
    board.append(i * 7 % 3)
    i += 1

total = 0
r = 0
while r < {N}:
    p = 0
    while p < SIZE * SIZE:
        if board[p] != 0:
            total += flood(board, p, board[p], set())
        p += 1
    board[r % (SIZE * SIZE)] = (board[r % (SIZE * SIZE)] + 1) % 3
    r += 1
print(total)
)PY",
        "",
        "go: Monte-Carlo Go helper; set membership + int-list board "
        "scans, branchy flood fill",
        30, ""});

    return out;
}

} // namespace workloads
} // namespace xlvm
