#include "workloads/workloads.h"

#include "common/logging.h"
#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

namespace {

std::vector<Workload>
buildPypy()
{
    std::vector<Workload> all;
    for (auto &part : {pypySuiteA(), pypySuiteB(), pypySuiteC()}) {
        for (const Workload &w : part)
            all.push_back(w);
    }
    return all;
}

/** Find a workload by name in a list. */
const Workload *
findIn(const std::vector<Workload> &ws, const std::string &name)
{
    for (const Workload &w : ws) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

std::vector<Workload>
buildClbg()
{
    std::vector<Workload> all = clbgPart();
    // Benchmarks shared with the PyPy suite reuse those sources under
    // their CLBG names.
    const std::vector<Workload> &py = pypySuite();
    struct Alias
    {
        const char *clbgName;
        const char *pypyName;
    };
    const Alias aliases[] = {
        {"fannkuchredux", "fannkuch"},
        {"nbody", "nbody_modified"},
        {"pidigits", "pidigits"},
        {"spectralnorm", "spectral_norm"},
        {"meteor", "meteor_contest"},
    };
    for (const Alias &a : aliases) {
        const Workload *src = findIn(py, a.pypyName);
        XLVM_ASSERT(src, "missing alias source ", a.pypyName);
        Workload w = *src;
        w.name = a.clbgName;
        w.suite = "clbg";
        all.push_back(std::move(w));
    }
    attachRktSources(all);
    return all;
}

} // namespace

const std::vector<Workload> &
pypySuite()
{
    static const std::vector<Workload> suite = buildPypy();
    return suite;
}

const std::vector<Workload> &
clbgSuite()
{
    static const std::vector<Workload> suite = buildClbg();
    return suite;
}

const std::vector<Workload> &
stressSuite()
{
    static const std::vector<Workload> suite = stressPart();
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    if (const Workload *w = findIn(pypySuite(), name))
        return w;
    if (const Workload *w = findIn(clbgSuite(), name))
        return w;
    return findIn(stressSuite(), name);
}

std::string
instantiate(const Workload &w, int64_t scale)
{
    if (scale <= 0)
        scale = w.defaultScale;
    std::string out = w.source;
    std::string n = std::to_string(scale);
    size_t pos = 0;
    while ((pos = out.find("{N}", pos)) != std::string::npos) {
        out.replace(pos, 3, n);
        pos += n.size();
    }
    return out;
}

} // namespace workloads
} // namespace xlvm
