/**
 * @file
 * PyPy-suite workloads, part B: template engines, string building,
 * dictionary-heavy web-framework analogs.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

std::vector<Workload>
pypySuiteB()
{
    std::vector<Workload> out;

    out.push_back({
        "django", "pypy",
        R"PY(
template = "<tr><td>{a}</td><td>{b}</td><td>{c}</td></tr>"

def render_row(ctx):
    row = template
    for key in ctx:
        row = row.replace("{" + key + "}", str(ctx[key]))
    return row

rows = []
i = 0
while i < {N}:
    ctx = {}
    ctx["a"] = i
    ctx["b"] = i * i % 93
    ctx["c"] = "name_" + str(i % 10)
    rows.append(render_row(ctx))
    i += 1
page = "\n".join(rows)
print(len(page))
)PY",
        "",
        "django: template rendering; rstring.replace + "
        "rordereddict.ll_call_lookup_function dominate (Table III)",
        550, ""});

    out.push_back({
        "spitfire", "pypy",
        R"PY(
def make_row(row, width):
    cells = []
    col = 0
    while col < width:
        cells.append(str(row * width + col))
        col += 1
    return "<td>" + "</td><td>".join(cells) + "</td>"

rows = []
r = 0
while r < {N}:
    rows.append("<tr>" + make_row(r, 12) + "</tr>")
    r += 1
table = "<table>" + "\n".join(rows) + "</table>"
print(len(table))
)PY",
        "",
        "spitfire: HTML table template; rstr.ll_join + ll_int2dec + "
        "rbuilder.ll_append (Table III)",
        450, ""});

    out.push_back({
        "slowspitfire", "pypy",
        R"PY(
table = ""
r = 0
while r < {N}:
    row = "<tr>"
    col = 0
    while col < 10:
        row = row + "<td>" + str(r * 10 + col) + "</td>"
        col += 1
    table = table + row + "</tr>"
    r += 1
print(len(table))
)PY",
        "",
        "slowspitfire: naive O(n^2) string concatenation; ll_strconcat "
        "copies dominate, few hot IR nodes (Fig 6b)",
        170, ""});

    out.push_back({
        "spitfire_cstringio", "pypy",
        R"PY(
pieces = []
r = 0
while r < {N}:
    pieces.append("<tr>")
    col = 0
    while col < 12:
        pieces.append("<td>")
        pieces.append(str(r * 12 + col))
        pieces.append("</td>")
        col += 1
    pieces.append("</tr>")
    r += 1
table = "".join(pieces)
print(len(table))
)PY",
        "",
        "spitfire_cstringio: buffered template output; builder-append "
        "pattern, join-dominated JIT calls",
        420, ""});

    out.push_back({
        "json_bench", "pypy",
        R"PY(
def encode_value(v, parts):
    parts.append(json_escape(v))

def encode_record(rec, keys, parts):
    parts.append("{")
    first = True
    for k in keys:
        if not first:
            parts.append(",")
        first = False
        parts.append(json_escape(k))
        parts.append(":")
        encode_value(str(rec[k]), parts)
    parts.append("}")

keys = ["id", "name", "flag", "payload"]
parts = []
parts.append("[")
i = 0
while i < {N}:
    rec = {}
    rec["id"] = i
    rec["name"] = "record_" + str(i)
    rec["flag"] = i % 2 == 0
    rec["payload"] = "data \"x\" " + str(i * 17 % 97)
    if i > 0:
        parts.append(",")
    encode_record(rec, keys, parts)
    i += 1
parts.append("]")
doc = "".join(parts)
print(len(doc))
)PY",
        "",
        "json_bench: JSON encoding; _pypyjson.raw_encode_basestring_"
        "ascii + rbuilder.ll_append (Table III)",
        380, ""});

    out.push_back({
        "bm_mako", "pypy",
        R"PY(
def render(title, items):
    buf = []
    buf.append("<html><head><title>")
    buf.append(title.upper())
    buf.append("</title></head><body><ul>")
    for it in items:
        buf.append("<li>")
        buf.append(it.replace("&", "&amp;").replace("<", "&lt;"))
        buf.append("</li>")
    buf.append("</ul></body></html>")
    return "".join(buf)

total = 0
page = 0
while page < {N}:
    items = []
    k = 0
    while k < 14:
        items.append("item<" + str(page) + "&" + str(k) + ">")
        k += 1
    total += len(render("page " + str(page), items))
    page += 1
print(total)
)PY",
        "",
        "bm_mako: template engine; unicode_encode_ucs1 analog (upper/"
        "replace) + dict lookups (Table III: 26.1%)",
        160, ""});

    out.push_back({
        "bm_chameleon", "pypy",
        R"PY(
registry = {}
i = 0
while i < 64:
    registry["macro_" + str(i)] = "<span>" + str(i) + "</span>"
    i += 1

out = []
step = 0
while step < {N}:
    name = "macro_" + str(step * 7 % 64)
    body = registry[name]
    out.append(body)
    if step % 5 == 0:
        registry[name + "_hot"] = body
    step += 1
print(len("".join(out)))
)PY",
        "",
        "bm_chameleon: macro registry; ll_call_lookup_function is "
        "17.9% of execution (Table III top entry)",
        1400, ""});

    out.push_back({
        "bm_mdp", "pypy",
        R"PY(
values = {}
s = 0
while s < 60:
    values[s] = 0
    s += 1

sweep = 0
while sweep < {N}:
    s = 0
    while s < 60:
        left = values[(s + 59) % 60]
        right = values[(s + 1) % 60]
        reward = s % 7
        best = left
        if right > left:
            best = right
        values[s] = (reward + best * 9 // 10)
        s += 1
    sweep += 1
total = 0
s = 0
while s < 60:
    total += values[s]
    s += 1
print(total)
)PY",
        "",
        "bm_mdp: value-iteration MDP; dict lookups per state transition "
        "(Table III 16.8% in ll_call_lookup_function)",
        300, ""});

    out.push_back({
        "eparse", "pypy",
        R"PY(
def tokenize_expr(text):
    toks = []
    cur = []
    i = 0
    while i < len(text):
        c = text[i]
        if c == "+" or c == "*" or c == "(" or c == ")":
            if len(cur) > 0:
                toks.append("".join(cur))
                cur = []
            toks.append(c)
        elif c == " ":
            if len(cur) > 0:
                toks.append("".join(cur))
                cur = []
        else:
            cur.append(c)
        i += 1
    if len(cur) > 0:
        toks.append("".join(cur))
    return toks

total = 0
n = 0
while n < {N}:
    expr = "(a" + str(n) + " + b) * (c + d" + str(n % 7) + ") + x"
    toks = tokenize_expr(expr)
    total += len(toks)
    total += len(" ".join(toks))
    n += 1
print(total)
)PY",
        "",
        "eparse: expression tokenizer; rstr.ll_join 12.3% (Table III), "
        "char-at-a-time string scanning",
        420, ""});

    out.push_back({
        "genshi_xml", "pypy",
        R"PY(
def escape(s):
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(
        ">", "&gt;")

def emit(tag, text, buf):
    buf.append("<")
    buf.append(tag)
    buf.append(">")
    buf.append(escape(text))
    buf.append("</")
    buf.append(tag)
    buf.append(">")

buf = []
i = 0
while i < {N}:
    emit("item", "value <" + str(i) + "> & more", buf)
    if i % 8 == 0:
        emit("group", "hdr" + str(i), buf)
    i += 1
doc = "".join(buf)
print(len(doc))
)PY",
        "",
        "genshi_xml: XML stream generation; dict-lookup + replace mix "
        "(Table III 12.4%)",
        800, ""});

    out.push_back({
        "html5lib", "pypy",
        R"PY(
table = []
i = 0
while i < 256:
    table.append(chr(i))
    i += 1
i = ord("A")
while i <= ord("Z"):
    table[i] = chr(i + 32)
    i += 1
lower_table = "".join(table)

def tokenize(html, counts):
    pos = 0
    tags = 0
    while True:
        lt = html.find("<", pos)
        if lt < 0:
            break
        gt = html.find(">", lt)
        if gt < 0:
            break
        tags += 1
        pos = gt + 1
    return tags

doc_parts = []
i = 0
while i < {N}:
    doc_parts.append("<DIV Class='x'>Text " + str(i) + "</DIV>")
    i += 1
doc = "".join(doc_parts)
total = tokenize(doc, {}) + len(doc)
print(total)
)PY",
        "",
        "html5lib: HTML tokenizer; descr_translate + ll_find_char "
        "(Table III 13.1%)",
        700, ""});

    out.push_back({
        "sympy_str", "pypy",
        R"PY(
class Sym:
    def __init__(self, kind, name, left, right):
        self.kind = kind
        self.name = name
        self.left = left
        self.right = right

    def tostr(self):
        if self.kind == 0:
            return self.name
        if self.kind == 1:
            return "(" + self.left.tostr() + " + " + self.right.tostr() + ")"
        if self.kind == 2:
            return "(" + self.left.tostr() + "*" + self.right.tostr() + ")"
        return "?"

def var(n):
    return Sym(0, n, None, None)

def add(a, b):
    return Sym(1, "", a, b)

def mul(a, b):
    return Sym(2, "", a, b)

total = 0
i = 0
while i < {N}:
    e = var("x")
    k = 0
    while k < 12:
        if k % 3 == 0:
            e = add(e, var("y" + str(k)))
        elif k % 3 == 1:
            e = mul(e, var("z"))
        else:
            e = add(mul(e, var("w")), e)
        k += 1
    total += len(e.tostr())
    i += 1
print(total)
)PY",
        "",
        "sympy_str: symbolic expression stringification; deep branchy "
        "trees, many equally-used traces (Fig 6b high end), heavy "
        "interpreter share (Fig 2)",
        55, ""});

    out.push_back({
        "sympy_integrate", "pypy",
        R"PY(
class Node:
    def __init__(self, kind, val, a, b):
        self.kind = kind
        self.val = val
        self.a = a
        self.b = b

def num(v):
    return Node(0, v, None, None)

def x():
    return Node(1, 0, None, None)

def plus(a, b):
    return Node(2, 0, a, b)

def times(a, b):
    return Node(3, 0, a, b)

def power(a, n):
    return Node(4, n, a, None)

def integrate(e):
    if e.kind == 0:
        return times(num(e.val), x())
    if e.kind == 1:
        return times(num(1), power(x(), 2))
    if e.kind == 2:
        return plus(integrate(e.a), integrate(e.b))
    if e.kind == 3:
        if e.a.kind == 0:
            return times(e.a, integrate(e.b))
        return plus(integrate(e.a), integrate(e.b))
    if e.kind == 4:
        return power(x(), e.val + 1)
    return e

def size(e):
    if e is None:
        return 0
    n = 1
    if e.a is not None:
        n += size(e.a)
    if e.b is not None:
        n += size(e.b)
    return n

total = 0
i = 0
while i < {N}:
    e = plus(times(num(3), power(x(), i % 5)),
             plus(x(), num(i % 11)))
    k = 0
    while k < 4:
        e = integrate(e)
        k += 1
    total += size(e)
    i += 1
print(total)
)PY",
        "",
        "sympy_integrate: symbolic integration; the largest compiled-IR "
        "count in Fig 6a (branchy, trace explosion)",
        220, ""});

    out.push_back({
        "twisted_iteration", "pypy",
        R"PY(
class Deferred:
    def __init__(self):
        self.callbacks = []
        self.result = None
    def addCallback(self, fn_id):
        self.callbacks.append(fn_id)
    def fire(self, value):
        self.result = value
        for fn_id in self.callbacks:
            if fn_id == 0:
                self.result = self.result + 1
            elif fn_id == 1:
                self.result = self.result * 2 % 1000003
            else:
                self.result = self.result - 3
        return self.result

total = 0
i = 0
while i < {N}:
    d = Deferred()
    d.addCallback(i % 3)
    d.addCallback((i + 1) % 3)
    d.addCallback(2)
    total = (total + d.fire(i)) % 1000000007
    i += 1
print(total)
)PY",
        "",
        "twisted_iteration: reactor callback chains; small objects + "
        "list iteration per event (Table I 15x)",
        1200, ""});

    out.push_back({
        "twisted_tcp", "pypy",
        R"PY(
chunks = []
i = 0
while i < 40:
    chunks.append("payload-" + str(i) + "-" + "x" * (i % 17 + 8))
    i += 1

total = 0
round = 0
while round < {N}:
    buffer = []
    size = 0
    k = 0
    while k < len(chunks):
        c = chunks[(k + round) % len(chunks)]
        buffer.append(c)
        size += len(c)
        if size > 512:
            sent = "".join(buffer)
            total += len(sent)
            buffer = []
            size = 0
        k += 1
    if len(buffer) > 0:
        total += len("".join(buffer))
    round += 1
print(total)
)PY",
        "",
        "twisted_tcp: socket write buffering; memcpy-analog join "
        "traffic (Table III: C memcpy 16.6%)",
        260, ""});

    return out;
}

} // namespace workloads
} // namespace xlvm
