/**
 * @file
 * PyPy-suite workloads, part A: arithmetic / object-oriented kernels.
 */

#include "workloads/suites.h"

namespace xlvm {
namespace workloads {

std::vector<Workload>
pypySuiteA()
{
    std::vector<Workload> out;

    out.push_back({
        "richards", "pypy",
        R"PY(
class Packet:
    def __init__(self, link, ident, kind):
        self.link = link
        self.ident = ident
        self.kind = kind
        self.datum = 0

class Task:
    def __init__(self, ident, priority, kind):
        self.ident = ident
        self.priority = priority
        self.kind = kind
        self.queue = []
        self.holdCount = 0
        self.workDone = 0

    def addPacket(self, p):
        self.queue.append(p)

    def runIdle(self, state):
        state.idleCount += 1
        if state.control % 2 == 0:
            state.control = state.control // 2
            return 1
        state.control = (state.control // 2) ^ 53256
        return 2

    def runWorker(self, state):
        if len(self.queue) > 0:
            p = self.queue.pop(0)
            p.datum = p.datum + 1
            self.workDone += 1
            state.handled += 1
            return 3
        return 0

    def runHandler(self, state):
        if len(self.queue) > 0:
            p = self.queue.pop(0)
            if p.kind == 1:
                state.devPackets += 1
            else:
                state.workPackets += 1
            return 1
        return 0

class State:
    def __init__(self):
        self.control = 491
        self.idleCount = 0
        self.handled = 0
        self.devPackets = 0
        self.workPackets = 0

def schedule(tasks, state, rounds):
    r = 0
    while r < rounds:
        i = 0
        while i < len(tasks):
            t = tasks[i]
            k = t.kind
            if k == 0:
                nxt = t.runIdle(state)
            elif k == 1:
                nxt = t.runWorker(state)
            else:
                nxt = t.runHandler(state)
            if nxt == 3:
                tasks[(i + 1) % len(tasks)].addPacket(
                    Packet(0, t.ident, r % 2))
            i += 1
        r += 1
    return state

tasks = []
kinds = [0, 1, 2, 1, 2, 0]
i = 0
while i < 6:
    t = Task(i, i % 3, kinds[i])
    t.addPacket(Packet(0, i, i % 2))
    tasks.append(t)
    i += 1
st = schedule(tasks, State(), {N})
print(st.idleCount + st.handled + st.devPackets + st.workPackets)
)PY",
        "",
        "richards: OS-scheduler simulation; polymorphic method dispatch, "
        "guard-heavy control flow (Table I best speedup, Fig 7 guard-"
        "dominated)",
        600, ""});

    out.push_back({
        "crypto_pyaes", "pypy",
        R"PY(
sbox = []
i = 0
while i < 256:
    sbox.append((i * 7 + 99) % 256)
    i += 1

def encrypt_block(block, rounds):
    b0 = block[0]
    b1 = block[1]
    b2 = block[2]
    b3 = block[3]
    r = 0
    while r < rounds:
        b0 = sbox[b0] ^ b1
        b1 = sbox[b1] ^ b2
        b2 = sbox[b2] ^ b3
        b3 = sbox[b3] ^ (b0 & 255)
        b0 = (b0 + r) % 256
        r += 1
    return ((b0 << 24) | (b1 << 16) | (b2 << 8) | b3)

total = 0
n = 0
while n < {N}:
    total = (total + encrypt_block([n % 256, (n * 3) % 256,
                                    (n * 5) % 256, (n * 7) % 256],
                                   14)) % 1000000007
    n += 1
print(total)
)PY",
        "",
        "crypto_pyaes: AES-style S-box rounds; int ops + int-strategy "
        "list indexing (Table I ~30x speedup)",
        900, ""});

    out.push_back({
        "chaos", "pypy",
        R"PY(
class GVector:
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def dist(self, other):
        dx = self.x - other.x
        dy = self.y - other.y
        return sqrt(dx * dx + dy * dy)
    def linear_combination(self, other, l1):
        return GVector(self.x * l1 + other.x * (1.0 - l1),
                       self.y * l1 + other.y * (1.0 - l1))

def chaos_game(points, iters):
    seed = 1234
    pos = GVector(0.5, 0.5)
    acc = 0.0
    i = 0
    while i < iters:
        seed = (seed * 1103515245 + 12345) % 2147483648
        target = points[seed % len(points)]
        pos = pos.linear_combination(target, 0.5)
        acc = acc + pos.dist(target)
        i += 1
    return acc

pts = [GVector(0.0, 0.0), GVector(1.0, 0.0), GVector(0.5, 1.0)]
r = chaos_game(pts, {N})
print(int(r))
)PY",
        "",
        "chaos: chaosgame fractal; float arithmetic in short-lived "
        "GVector objects (escape analysis showcase)",
        4000, ""});

    out.push_back({
        "telco", "pypy",
        R"PY(
def process_call(duration, rate_kind):
    price = duration * 9
    if rate_kind == 1:
        price = duration * 13
    basic_tax = price * 6 // 100
    dist_tax = 0
    if rate_kind == 1:
        dist_tax = price * 12 // 100
    return price + basic_tax + dist_tax

lines = []
i = 0
while i < {N}:
    lines.append(str(i * 37 % 2800) + "," + str(i % 2))
    i += 1

total = 0
for line in lines:
    parts = line.split(",")
    duration = int(parts[0])
    kind = int(parts[1])
    total += process_call(duration, kind)
print(total)
)PY",
        "",
        "telco: billing; string parsing (string_to_int AOT calls per "
        "Table III) + integer rating arithmetic",
        1500, ""});

    out.push_back({
        "spectral_norm", "pypy",
        R"PY(
def eval_A(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0)

def eval_A_times_u(u, n):
    out = []
    i = 0
    while i < n:
        s = 0.0
        j = 0
        while j < n:
            s = s + eval_A(i, j) * u[j]
            j += 1
        out.append(s)
        i += 1
    return out

def eval_At_times_u(u, n):
    out = []
    i = 0
    while i < n:
        s = 0.0
        j = 0
        while j < n:
            s = s + eval_A(j, i) * u[j]
            j += 1
        out.append(s)
        i += 1
    return out

n = {N}
u = []
i = 0
while i < n:
    u.append(1.0)
    i += 1
k = 0
while k < 6:
    v = eval_At_times_u(eval_A_times_u(u, n), n)
    u = v
    k += 1
vBv = 0.0
vv = 0.0
i = 0
while i < n:
    vBv = vBv + u[i] * v[i]
    vv = vv + v[i] * v[i]
    i += 1
print(int(sqrt(vBv / vv) * 1000000))
)PY",
        "",
        "spectralnorm: power iteration; float-strategy lists, nested "
        "loops (call_assembler), high JIT-phase share (Fig 4)",
        70, ""});

    out.push_back({
        "float", "pypy",
        R"PY(
class Point:
    def __init__(self, i):
        self.x = sin(i * 0.1)
        self.y = cos(i * 0.1) * 3.0
        self.z = self.x * self.x / 2.0

    def normalize(self):
        norm = sqrt(self.x * self.x + self.y * self.y + self.z * self.z)
        self.x = self.x / norm
        self.y = self.y / norm
        self.z = self.z / norm

def maximize(points):
    nx = 0.0
    ny = 0.0
    nz = 0.0
    for p in points:
        if p.x > nx:
            nx = p.x
        if p.y > ny:
            ny = p.y
        if p.z > nz:
            nz = p.z
    return nx + ny + nz

total = 0.0
rounds = 0
while rounds < 8:
    points = []
    i = 0
    while i < {N}:
        points.append(Point(i))
        i += 1
    for p in points:
        p.normalize()
    total = total + maximize(points)
    rounds += 1
print(int(total * 1000))
)PY",
        "",
        "float: bulk Point allocation + trig; allocation pressure the "
        "nursery absorbs, few compiled IR nodes (Fig 6a low end)",
        220, ""});

    out.push_back({
        "nbody_modified", "pypy",
        R"PY(
def advance(xs, ys, zs, vxs, vys, vzs, ms, dt, steps):
    n = len(xs)
    s = 0
    while s < steps:
        i = 0
        while i < n:
            j = i + 1
            while j < n:
                dx = xs[i] - xs[j]
                dy = ys[i] - ys[j]
                dz = zs[i] - zs[j]
                d2 = dx * dx + dy * dy + dz * dz
                mag = dt / (d2 * pow(d2, 0.5))
                vxs[i] = vxs[i] - dx * ms[j] * mag
                vys[i] = vys[i] - dy * ms[j] * mag
                vzs[i] = vzs[i] - dz * ms[j] * mag
                vxs[j] = vxs[j] + dx * ms[i] * mag
                vys[j] = vys[j] + dy * ms[i] * mag
                vzs[j] = vzs[j] + dz * ms[i] * mag
                j += 1
            i += 1
        i = 0
        while i < n:
            xs[i] = xs[i] + dt * vxs[i]
            ys[i] = ys[i] + dt * vys[i]
            zs[i] = zs[i] + dt * vzs[i]
            i += 1
        s += 1

xs = [0.0, 4.84, 8.34, 12.89, 15.37]
ys = [0.0, -1.16, 4.12, -15.11, -25.91]
zs = [0.0, -0.1, -0.4, -0.22, 0.17]
vxs = [0.0, 0.16, -0.27, 0.29, 0.26]
vys = [0.0, 0.77, 0.49, 0.23, 0.15]
vzs = [0.0, -0.002, 0.002, -0.002, -0.003]
ms = [39.47, 0.037, 0.011, 0.0017, 0.0002]
advance(xs, ys, zs, vxs, vys, vzs, ms, 0.01, {N})
print(int((xs[1] + ys[2] + vxs[3]) * 1000000))
)PY",
        "",
        "nbody_modified: planetary dynamics; C `pow` dominates (Table "
        "III: 44.6% in pow)",
        250, ""});

    out.push_back({
        "ai", "pypy",
        R"PY(
def ok(queens, row, col):
    i = 0
    while i < len(queens):
        qc = queens[i]
        if qc == col:
            return False
        if qc - (row - i) == col:
            return False
        if qc + (row - i) == col:
            return False
        i += 1
    return True

def solve(n, queens, row):
    if row == n:
        return 1
    count = 0
    col = 0
    while col < n:
        if ok(queens, row, col):
            queens.append(col)
            count += solve(n, queens, row + 1)
            queens.pop()
        col += 1
    return count

total = 0
round = 0
while round < {N}:
    total += solve(7, [], 0)
    round += 1
print(total)
)PY",
        "",
        "ai: n-queens backtracking; recursion inlined into traces, "
        "int-list scanning (Table III setobject storage analog)",
        12, ""});

    out.push_back({
        "raytrace_simple", "pypy",
        R"PY(
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z
    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z
    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)
    def scale(self, k):
        return Vec(self.x * k, self.y * k, self.z * k)

class Sphere:
    def __init__(self, cx, cy, cz, r):
        self.center = Vec(cx, cy, cz)
        self.r2 = r * r
    def hit(self, orig, dir):
        oc = self.center.sub(orig)
        b = oc.dot(dir)
        disc = b * b - oc.dot(oc) + self.r2
        if disc < 0.0:
            return -1.0
        return b - sqrt(disc)

spheres = [Sphere(0.0, 0.0, -5.0, 1.0), Sphere(2.0, 1.0, -6.0, 1.5),
           Sphere(-2.0, -1.0, -4.0, 0.7)]
orig = Vec(0.0, 0.0, 0.0)
hits = 0
py = 0
while py < {N}:
    px = 0
    while px < {N}:
        dx = (px - {N} / 2.0) / {N}
        dy = (py - {N} / 2.0) / {N}
        norm = sqrt(dx * dx + dy * dy + 1.0)
        dir = Vec(dx / norm, dy / norm, -1.0 / norm)
        best = 1000000.0
        for s in spheres:
            t = s.hit(orig, dir)
            if t > 0.0 and t < best:
                best = t
                hits += 1
        px += 1
    py += 1
print(hits)
)PY",
        "",
        "raytrace-simple: ray-sphere intersection; virtualized Vec "
        "temporaries, float math through sqrt AOT calls",
        42, ""});

    return out;
}

} // namespace workloads
} // namespace xlvm
