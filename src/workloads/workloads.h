/**
 * @file
 * Benchmark workload registry.
 *
 * Each workload is a miniature of a PyPy-Benchmark-Suite or CLBG entry,
 * written in MiniPy (and, for CLBG, also MiniRkt) to exercise the same
 * dominant mechanism the paper attributes to the original: pidigits →
 * rbigint AOT calls, richards → guard-heavy polymorphic dispatch,
 * binarytrees → GC pressure, spitfire → string building, and so on.
 * The `models` string documents the correspondence per workload.
 */

#ifndef XLVM_WORKLOADS_WORKLOADS_H
#define XLVM_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace xlvm {
namespace workloads {

struct Workload
{
    std::string name;
    std::string suite; ///< "pypy" or "clbg"
    std::string source; ///< MiniPy source (with optional {N} placeholder)
    std::string rktSource; ///< MiniRkt source (CLBG only)
    std::string models; ///< which original benchmark + mechanism
    int64_t defaultScale = 0; ///< substituted for {N}
    /** Expected final print line (sanity check), empty if data-dependent */
    std::string expect;
};

/** Table I / Figures 2-9 workloads (PyPy Benchmark Suite analogs). */
const std::vector<Workload> &pypySuite();

/** Table II / Figure 4 workloads (CLBG analogs). */
const std::vector<Workload> &clbgSuite();

/**
 * Adversarial stress workloads for the fault-containment subsystem
 * (deopt storms, guard churn). Resolvable via findWorkload() but kept
 * out of the figure sweeps and golden sets by construction.
 */
const std::vector<Workload> &stressSuite();

const Workload *findWorkload(const std::string &name);

/** Substitute the {N} scale placeholder. */
std::string instantiate(const Workload &w, int64_t scale = 0);

} // namespace workloads
} // namespace xlvm

#endif // XLVM_WORKLOADS_WORKLOADS_H
