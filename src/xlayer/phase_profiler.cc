#include "xlayer/phase_profiler.h"

#include "common/logging.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

PhaseProfiler::PhaseProfiler(AnnotationBus &bus, uint64_t bin_instrs)
    : bus_(bus), binInstrs(bin_instrs)
{
    stack.push_back(Phase::Interpreter);
    bus_.core().setBucket(0);
    bus_.addListener(this);
    if (binInstrs) {
        nextBinEnd = binInstrs;
        binStartCycles = cyclesNow();
    }
}

PhaseProfiler::~PhaseProfiler()
{
    bus_.removeListener(this);
}

std::array<double, kNumPhases>
PhaseProfiler::cyclesNow() const
{
    std::array<double, kNumPhases> c{};
    for (uint32_t p = 0; p < kNumPhases; ++p)
        c[p] = bus_.core().bucketCounters(p).cycles();
    return c;
}

void
PhaseProfiler::maybeCloseBin()
{
    if (!binInstrs)
        return;
    uint64_t instr = bus_.core().totalInstructions();
    while (instr >= nextBinEnd) {
        auto now = cyclesNow();
        PhaseTimelineBin bin;
        bin.instrEnd = nextBinEnd;
        for (uint32_t p = 0; p < kNumPhases; ++p)
            bin.cycles[p] = now[p] - binStartCycles[p];
        bins.push_back(bin);
        binStartCycles = now;
        nextBinEnd += binInstrs;
    }
}

void
PhaseProfiler::onAnnot(uint32_t tag, uint32_t payload)
{
    switch (tag) {
      case kPhaseEnter:
        XLVM_ASSERT(payload < kNumPhases, "bad phase payload");
        stack.push_back(static_cast<Phase>(payload));
        bus_.core().setBucket(payload);
        break;
      case kPhaseExit:
        if (stack.size() <= 1) {
            // A kPhaseExit with nothing but the Interpreter sentinel on
            // the stack is a malformed event stream (e.g. an exit
            // emitted twice). Popping the sentinel would leave
            // currentPhase() reading an empty stack, so reject the
            // event: count it, warn once, and keep the sentinel.
            ++underflows_;
            if (underflows_ == 1) {
                XLVM_WARN("phase exit (", phaseName(Phase(payload)),
                          ") on bottomed-out phase stack; ignored");
            }
            break;
        }
        XLVM_ASSERT(static_cast<uint32_t>(stack.back()) == payload,
                    "mismatched phase exit: in ",
                    phaseName(stack.back()), " exiting ",
                    phaseName(static_cast<Phase>(payload)));
        stack.pop_back();
        bus_.core().setBucket(static_cast<uint32_t>(stack.back()));
        break;
      default:
        break;
    }
    maybeCloseBin();
}

Phase
PhaseProfiler::currentPhase() const
{
    return stack.back();
}

std::array<double, kNumPhases>
PhaseProfiler::phaseCycleShares() const
{
    std::array<double, kNumPhases> shares{};
    double total = 0.0;
    for (uint32_t p = 0; p < kNumPhases; ++p) {
        shares[p] = bus_.core().bucketCounters(p).cycles();
        total += shares[p];
    }
    if (total > 0) {
        for (auto &s : shares)
            s /= total;
    }
    return shares;
}

} // namespace xlayer
} // namespace xlvm
