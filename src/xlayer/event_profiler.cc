#include "xlayer/event_profiler.h"

#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

EventProfiler::EventProfiler(AnnotationBus &bus) : bus_(bus)
{
    bus_.addListener(this);
}

EventProfiler::~EventProfiler()
{
    bus_.removeListener(this);
}

void
EventProfiler::onAnnot(uint32_t tag, uint32_t payload)
{
    (void)payload;
    switch (tag) {
      case kLoopCompiled:
        ++loopsCompiled;
        break;
      case kBridgeCompiled:
        ++bridgesCompiled;
        break;
      case kTraceAborted:
        ++tracesAborted;
        // v7: payload is a jit::AbortReason; unknown values land in
        // slot 0 ("none") so pre-v7 streams still aggregate cleanly.
        ++abortReasons[payload < kNumAbortReasons ? payload : 0];
        break;
      case kTraceBlacklisted:
        ++tracesBlacklisted;
        break;
      case kTraceRearmed:
        ++tracesRearmed;
        break;
      case kTraceEvicted:
        ++tracesEvicted;
        break;
      case kCompileDowngrade:
        ++compileDowngrades;
        break;
      case kTraceEnter:
        ++traceEnters;
        break;
      case kDeopt:
        ++deopts;
        break;
      case kGcMinor:
        ++gcMinor;
        break;
      case kGcMajor:
        ++gcMajor;
        break;
      case kAppEvent:
        ++appEvents;
        break;
      case kTierUp:
        ++tierUps;
        break;
      case kTier1Compile:
        ++tier1Compiles;
        break;
      default:
        break;
    }
}

} // namespace xlayer
} // namespace xlvm
