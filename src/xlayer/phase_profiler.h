/**
 * @file
 * Phase breakdown and phase timeline profiler (Figures 2, 3, 4; Table IV).
 *
 * Maintains the phase stack from kPhaseEnter/kPhaseExit annotations,
 * switches the core's active counter bucket accordingly (the PAPI-on-
 * annotation mechanism of Section III), and records a binned timeline of
 * cycles-per-phase for the phase diagrams of Figure 3.
 */

#ifndef XLVM_XLAYER_PHASE_PROFILER_H
#define XLVM_XLAYER_PHASE_PROFILER_H

#include <array>
#include <cstdint>
#include <vector>

#include "xlayer/bus.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace xlayer {

/** One timeline bin: cycle share of each phase within the bin. */
struct PhaseTimelineBin
{
    uint64_t instrEnd = 0; ///< cumulative instruction count at bin end
    std::array<double, kNumPhases> cycles{};
};

class PhaseProfiler : public AnnotListener
{
  public:
    /**
     * @param bus          annotation bus to subscribe to
     * @param bin_instrs   timeline bin width in retired instructions
     *                     (0 disables timeline recording)
     */
    explicit PhaseProfiler(AnnotationBus &bus, uint64_t bin_instrs = 0);
    ~PhaseProfiler() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    /**
     * With a timeline armed, maybeCloseBin() runs on *every* annotation
     * and snapshots cycles the moment a bin boundary is crossed, so no
     * tag is ignorable; otherwise only phase transitions matter.
     */
    bool
    ignoresTag(uint32_t tag) const override
    {
        if (binInstrs != 0)
            return false;
        return tag != kPhaseEnter && tag != kPhaseExit;
    }

    Phase currentPhase() const;

    /** Final per-phase counters (valid after the run). */
    const sim::PerfCounters &
    phaseCounters(Phase p) const
    {
        return bus_.core().bucketCounters(static_cast<uint32_t>(p));
    }

    /** Fraction of total cycles spent in each phase. */
    std::array<double, kNumPhases> phaseCycleShares() const;

    const std::vector<PhaseTimelineBin> &timeline() const { return bins; }

    /** Depth of the phase stack (for tests). */
    size_t stackDepth() const { return stack.size(); }

    /** kPhaseExit events rejected on a bottomed-out phase stack. */
    uint64_t phaseUnderflows() const { return underflows_; }

  private:
    void maybeCloseBin();
    std::array<double, kNumPhases> cyclesNow() const;

    AnnotationBus &bus_;
    std::vector<Phase> stack;
    uint64_t binInstrs;
    std::vector<PhaseTimelineBin> bins;
    std::array<double, kNumPhases> binStartCycles{};
    uint64_t nextBinEnd = 0;
    uint64_t underflows_ = 0;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_PHASE_PROFILER_H
