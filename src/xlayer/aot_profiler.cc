#include "xlayer/aot_profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

AotCallProfiler::AotCallProfiler(AnnotationBus &bus) : bus_(bus)
{
    bus_.addListener(this);
}

AotCallProfiler::~AotCallProfiler()
{
    bus_.removeListener(this);
}

void
AotCallProfiler::onAnnot(uint32_t tag, uint32_t payload)
{
    if (tag == kAotEnter) {
        active.emplace_back(payload, bus_.core().totalCycles());
        ++nCalls;
    } else if (tag == kAotExit) {
        XLVM_ASSERT(!active.empty(), "AOT exit without enter");
        XLVM_ASSERT(active.back().first == payload,
                    "mismatched AOT exit, fn ", payload);
        auto [fn, entry_cycles] = active.back();
        active.pop_back();
        // Attribute to the outermost entry point only.
        if (active.empty()) {
            if (fn >= perFn.size())
                perFn.resize(fn + 1);
            perFn[fn].fnId = fn;
            ++perFn[fn].calls;
            perFn[fn].cycles += bus_.core().totalCycles() - entry_cycles;
        }
    }
}

std::vector<AotFunctionStats>
AotCallProfiler::significantFunctions(double min_share) const
{
    double total = bus_.core().totalCycles();
    std::vector<AotFunctionStats> out;
    for (const auto &f : perFn) {
        if (f.calls == 0)
            continue;
        if (total <= 0 || f.cycles / total >= min_share)
            out.push_back(f);
    }
    std::sort(out.begin(), out.end(),
              [](const AotFunctionStats &a, const AotFunctionStats &b) {
                  return a.cycles > b.cycles;
              });
    return out;
}

} // namespace xlayer
} // namespace xlvm
