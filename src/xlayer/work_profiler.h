/**
 * @file
 * Work-rate profiler: the interpreter-level characterization tool behind
 * the warmup curves of Figure 5.
 *
 * Every dispatch-loop iteration emits a kDispatch annotation regardless of
 * whether the plain interpreter, the tracing meta-interpreter, or
 * JIT-compiled code is executing (traces carry the annotation through
 * their debug merge points). Counting those annotations against retired
 * instructions yields "completed work per unit time" without perturbing
 * the measured execution — the paper's break-even methodology.
 */

#ifndef XLVM_XLAYER_WORK_PROFILER_H
#define XLVM_XLAYER_WORK_PROFILER_H

#include <cstdint>
#include <vector>

#include "xlayer/bus.h"

namespace xlvm {
namespace xlayer {

/** One warmup-curve sample. */
struct WorkSample
{
    uint64_t instructions = 0; ///< retired instructions at sample time
    double cycles = 0.0;
    uint64_t work = 0;         ///< dispatch quanta (bytecodes) completed
};

class WorkRateProfiler : public AnnotListener
{
  public:
    /**
     * @param sample_instrs sample the curve every this many retired
     *        instructions.
     */
    explicit WorkRateProfiler(AnnotationBus &bus,
                              uint64_t sample_instrs = 100000);
    ~WorkRateProfiler() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    bool ignoresTag(uint32_t tag) const override { return tag != kDispatch; }

    uint64_t totalWork() const { return work; }
    const std::vector<WorkSample> &samples() const { return samples_; }

    /** Per-opcode dynamic execution histogram. */
    const std::vector<uint64_t> &opcodeHistogram() const { return opcodes; }

    /** Force a final sample at the current point. */
    void finalize();

  private:
    void takeSample();

    AnnotationBus &bus_;
    uint64_t sampleInstrs;
    uint64_t nextSample;
    uint64_t work = 0;
    std::vector<WorkSample> samples_;
    std::vector<uint64_t> opcodes;
};

/**
 * Find the break-even instruction count between a measured warmup curve
 * and a reference linear work rate (work per instruction of the baseline
 * interpreter): the earliest sample where cumulative work on the JIT VM
 * reaches what the baseline would have completed in the same number of
 * instructions. Returns 0 if the curve starts ahead, or UINT64_MAX if it
 * never breaks even within the recorded window.
 */
uint64_t breakEvenInstructions(const std::vector<WorkSample> &curve,
                               double baseline_work_per_instr);

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_WORK_PROFILER_H
