/**
 * @file
 * Deterministic simulated-cycle sampling profiler.
 *
 * The aggregate profilers answer "how much, per phase"; the tracer
 * answers "what happened, in order"; the sampler answers "*where* do the
 * modeled cycles go" — which trace, which guard region, which micro-op.
 * It arms sim::Core's cycle sampler (see sim::CycleSampleSink): every N
 * modeled cycles the core delivers one sample carrying the active
 * counter bucket (== phase), the packed execution-context word the VM
 * layers maintain (interp / trace id / bridge id / tier / GC / compile),
 * and the modeled pc of the crossing charge. Because the sample clock is
 * the modeled cycle counter itself — never wall clock — the resulting
 * profile is bit-identical across --jobs values, repeated runs, and
 * hosts, like every other modeled statistic.
 *
 * Overhead discipline mirrors the tracer: disabled (intervalCycles == 0)
 * the core is never armed, so the charge hot path pays one always-false
 * compare; enabled, samples aggregate into an ordered map keyed by
 * (phase, ctx, pc), touched only when a sample fires (~every N cycles),
 * so wall-clock overhead scales with 1/N and stays well under 10% at the
 * default interval. Sampling never moves a modeled counter, so counters
 * are bit-identical with the profiler on or off.
 */

#ifndef XLVM_XLAYER_SAMPLER_H
#define XLVM_XLAYER_SAMPLER_H

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "sim/core.h"

namespace xlvm {
namespace xlayer {

struct SamplerOptions
{
    /** Sampling period in whole modeled cycles; 0 disables entirely. */
    uint64_t intervalCycles = 0;
};

/** Default --profile-interval: fine enough to light up every phase of a
 *  Table I run, coarse enough that sampling cost is noise. */
constexpr uint64_t kDefaultSampleIntervalCycles = 10000;

/** One aggregated sample site: a (phase, context, pc) attribution cell. */
struct SampleSite
{
    uint32_t phase = 0; ///< counter bucket (xlayer::Phase value)
    uint64_t ctx = 0;   ///< packed context word (sim::sampleCtxPack)
    uint64_t pc = 0;    ///< modeled pc of the sampled charge
    uint64_t count = 0; ///< samples that landed in this cell
};

/**
 * One run's profile, moved out of the sampler when the run completes
 * (CycleSampler::take). Sites are in ascending (phase, ctx, pc) order —
 * a deterministic total order, so two bit-identical runs export
 * byte-identical profiles.
 */
struct SampleProfile
{
    uint64_t intervalCycles = 0;
    uint64_t samples = 0;
    std::vector<SampleSite> sites;
    /**
     * Run-length-encoded per-sample phase sequence in sample order:
     * (phase, consecutive samples). Sample k fired at modeled cycle
     * (k+1)*intervalCycles, so this is the profile's time axis — the
     * Chrome-trace counter-track export reconstructs timestamps from
     * it without storing per-sample records.
     */
    std::vector<std::pair<uint32_t, uint64_t>> phaseSeq;
};

class CycleSampler : public sim::CycleSampleSink
{
  public:
    /** Arms @p core when opts.intervalCycles != 0; no-op otherwise. */
    CycleSampler(sim::Core &core, const SamplerOptions &opts);
    ~CycleSampler() override;

    void onCycleSample(uint64_t clock_fp, uint32_t bucket, uint64_t pc,
                       uint64_t ctx) override;

    bool enabled() const { return intervalCycles_ != 0; }
    uint64_t intervalCycles() const { return intervalCycles_; }
    uint64_t samples() const { return total_; }

    /** Move the aggregated profile out and reset for the next run. */
    SampleProfile take();

  private:
    sim::Core &core_;
    uint64_t intervalCycles_;
    uint64_t total_ = 0;
    /** (phase, ctx, pc) → sample count; ordered for determinism. */
    std::map<std::tuple<uint32_t, uint64_t, uint64_t>, uint64_t> counts_;
    /** RLE phase-per-sample sequence (see SampleProfile::phaseSeq). */
    std::vector<std::pair<uint32_t, uint64_t>> phaseSeq_;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_SAMPLER_H
