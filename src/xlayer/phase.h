/**
 * @file
 * Execution phases of a meta-tracing JIT VM (Section V-B of the paper).
 */

#ifndef XLVM_XLAYER_PHASE_H
#define XLVM_XLAYER_PHASE_H

#include <cstdint>

namespace xlvm {
namespace xlayer {

/**
 * The six phases the paper's framework-level characterization teases
 * apart, plus Native for statically compiled baseline runs. Phase values
 * double as sim::Core counter-bucket indices.
 */
enum class Phase : uint8_t
{
    Interpreter = 0, ///< bytecode/AST interpretation
    Tracing,         ///< meta-interpreter recording + optimizing a trace
    Jit,             ///< executing JIT-compiled trace code
    JitCall,         ///< AOT-compiled runtime functions called from traces
    Gc,              ///< minor/major garbage collection
    Blackhole,       ///< deoptimization via the blackhole interpreter
    Native,          ///< statically compiled baseline execution
    NumPhases
};

constexpr uint32_t kNumPhases = static_cast<uint32_t>(Phase::NumPhases);

/** Short display name for a phase. */
inline const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Interpreter:
        return "interp";
      case Phase::Tracing:
        return "tracing";
      case Phase::Jit:
        return "jit";
      case Phase::JitCall:
        return "jit-call";
      case Phase::Gc:
        return "gc";
      case Phase::Blackhole:
        return "blackhole";
      case Phase::Native:
        return "native";
      default:
        return "?";
    }
}

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_PHASE_H
