#include "xlayer/irnode_profiler.h"

#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

IrNodeProfiler::IrNodeProfiler(AnnotationBus &bus) : bus_(bus)
{
    bus_.addListener(this);
}

IrNodeProfiler::~IrNodeProfiler()
{
    bus_.removeListener(this);
}

void
IrNodeProfiler::onAnnot(uint32_t tag, uint32_t payload)
{
    if (tag != kIrNode)
        return;
    if (payload >= counts.size())
        counts.resize(payload + 1024, 0);
    ++counts[payload];
    ++total;
}

} // namespace xlayer
} // namespace xlvm
