/**
 * @file
 * Framework-event profiler: counts of JIT and GC lifecycle events.
 */

#ifndef XLVM_XLAYER_EVENT_PROFILER_H
#define XLVM_XLAYER_EVENT_PROFILER_H

#include <cstdint>

#include "xlayer/bus.h"

namespace xlvm {
namespace xlayer {

class EventProfiler : public AnnotListener
{
  public:
    explicit EventProfiler(AnnotationBus &bus);
    ~EventProfiler() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    bool
    ignoresTag(uint32_t tag) const override
    {
        switch (tag) {
          case kLoopCompiled:
          case kBridgeCompiled:
          case kTraceAborted:
          case kTraceEnter:
          case kDeopt:
          case kGcMinor:
          case kGcMajor:
          case kAppEvent:
          case kTierUp:
          case kTier1Compile:
          case kTraceBlacklisted:
          case kTraceRearmed:
          case kTraceEvicted:
          case kCompileDowngrade:
            return false;
          default:
            return true;
        }
    }

    uint64_t loopsCompiled = 0;
    uint64_t bridgesCompiled = 0;
    uint64_t tracesAborted = 0;
    uint64_t traceEnters = 0;
    uint64_t deopts = 0;
    uint64_t gcMinor = 0;
    uint64_t gcMajor = 0;
    uint64_t appEvents = 0;
    uint64_t tierUps = 0;
    uint64_t tier1Compiles = 0;

    /** Fault-containment events (schema v7). */
    uint64_t tracesBlacklisted = 0;
    uint64_t tracesRearmed = 0;
    uint64_t tracesEvicted = 0;
    uint64_t compileDowngrades = 0;
    /** Per-reason kTraceAborted payload counts (jit::AbortReason). */
    static constexpr uint32_t kNumAbortReasons = 16;
    uint64_t abortReasons[kNumAbortReasons] = {};

  private:
    AnnotationBus &bus_;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_EVENT_PROFILER_H
