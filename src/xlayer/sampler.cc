#include "xlayer/sampler.h"

namespace xlvm {
namespace xlayer {

CycleSampler::CycleSampler(sim::Core &core, const SamplerOptions &opts)
    : core_(core), intervalCycles_(opts.intervalCycles)
{
    if (intervalCycles_ != 0)
        core_.armSampler(this, intervalCycles_ * sim::kCycleFp);
}

CycleSampler::~CycleSampler()
{
    if (intervalCycles_ != 0)
        core_.armSampler(nullptr, 0);
}

void
CycleSampler::onCycleSample(uint64_t clock_fp, uint32_t bucket,
                            uint64_t pc, uint64_t ctx)
{
    (void)clock_fp;
    ++total_;
    ++counts_[std::make_tuple(bucket, ctx, pc)];
    if (phaseSeq_.empty() || phaseSeq_.back().first != bucket)
        phaseSeq_.emplace_back(bucket, 1);
    else
        ++phaseSeq_.back().second;
}

SampleProfile
CycleSampler::take()
{
    SampleProfile p;
    p.intervalCycles = intervalCycles_;
    p.samples = total_;
    p.sites.reserve(counts_.size());
    for (const auto &kv : counts_) {
        SampleSite s;
        s.phase = std::get<0>(kv.first);
        s.ctx = std::get<1>(kv.first);
        s.pc = std::get<2>(kv.first);
        s.count = kv.second;
        p.sites.push_back(s);
    }
    p.phaseSeq = std::move(phaseSeq_);
    phaseSeq_.clear();
    counts_.clear();
    total_ = 0;
    return p;
}

} // namespace xlayer
} // namespace xlvm
