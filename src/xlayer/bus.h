/**
 * @file
 * AnnotationBus — the PinTool analog.
 *
 * The bus receives every annotation the core observes and fans it out to
 * registered listeners (profilers). Listeners are the analysis "tools" of
 * the methodology: phase breakdown, work-rate/warmup tracking, AOT-call
 * attribution, IR-node statistics.
 */

#ifndef XLVM_XLAYER_BUS_H
#define XLVM_XLAYER_BUS_H

#include <vector>

#include "sim/core.h"

namespace xlvm {
namespace xlayer {

/** One instrumentation tool subscribed to the bus. */
class AnnotListener
{
  public:
    virtual ~AnnotListener() = default;
    virtual void onAnnot(uint32_t tag, uint32_t payload) = 0;
};

class AnnotationBus : public sim::AnnotSink
{
  public:
    explicit AnnotationBus(sim::Core &core) : core_(core)
    {
        core.setAnnotSink(this);
    }

    void
    onAnnot(uint32_t tag, uint32_t payload) override
    {
        for (AnnotListener *l : listeners)
            l->onAnnot(tag, payload);
    }

    void addListener(AnnotListener *l) { listeners.push_back(l); }

    void
    removeListener(AnnotListener *l)
    {
        for (size_t i = 0; i < listeners.size(); ++i) {
            if (listeners[i] == l) {
                listeners.erase(listeners.begin() + i);
                return;
            }
        }
    }

    sim::Core &core() { return core_; }

  private:
    sim::Core &core_;
    std::vector<AnnotListener *> listeners;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_BUS_H
