/**
 * @file
 * AnnotationBus — the PinTool analog.
 *
 * The bus receives every annotation the core observes and fans it out to
 * registered listeners (profilers). Listeners are the analysis "tools" of
 * the methodology: phase breakdown, work-rate/warmup tracking, AOT-call
 * attribution, IR-node statistics.
 */

#ifndef XLVM_XLAYER_BUS_H
#define XLVM_XLAYER_BUS_H

#include <vector>

#include "sim/block_memo.h"
#include "sim/core.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

// The sim layer cannot include xlayer headers, so it defines its own memo
// event constants; keep the two vocabularies pinned together.
static_assert(kMemoHit == sim::kMemoEventHit, "memo tag mismatch");
static_assert(kMemoInvalidate == sim::kMemoEventInvalidate,
              "memo tag mismatch");
static_assert(kMemoMiss == sim::kMemoEventMiss, "memo tag mismatch");
static_assert(kSuperblockHit == sim::kMemoEventSuperblockHit,
              "memo tag mismatch");
static_assert(kSuperblockDiverge == sim::kMemoEventSuperblockDiverge,
              "memo tag mismatch");

/** One instrumentation tool subscribed to the bus. */
class AnnotListener
{
  public:
    virtual ~AnnotListener() = default;
    virtual void onAnnot(uint32_t tag, uint32_t payload) = 0;

    /**
     * True when onAnnot(tag, ...) is a no-op in the listener's *current*
     * state — the memo layer may then elide the delivery when replaying a
     * recorded block. Conservative default: every tag matters. Listeners
     * whose answer can change over time (e.g. a profiler arming itself)
     * must keep this conservative or rely on the bus generation bump.
     */
    virtual bool ignoresTag(uint32_t /*tag*/) const { return false; }

    /** Opt-in for the out-of-band memo telemetry channel. */
    virtual bool wantsMemoEvents() const { return false; }

    /** Delivery of one memo event (only if wantsMemoEvents()). */
    virtual void onMemoEvent(uint32_t /*tag*/, uint32_t /*payload*/) {}
};

class AnnotationBus : public sim::AnnotSink
{
  public:
    explicit AnnotationBus(sim::Core &core) : core_(core)
    {
        core.setAnnotSink(this);
    }

    void
    onAnnot(uint32_t tag, uint32_t payload) override
    {
        for (AnnotListener *l : listeners)
            l->onAnnot(tag, payload);
    }

    /** An annotation tag is pure iff every listener ignores it. */
    bool
    annotPure(uint32_t tag) const override
    {
        for (AnnotListener *l : listeners)
            if (!l->ignoresTag(tag))
                return false;
        return true;
    }

    uint64_t annotGeneration() const override { return generation_; }

    bool
    memoEventsWanted() const override
    {
        for (AnnotListener *l : listeners)
            if (l->wantsMemoEvents())
                return true;
        return false;
    }

    void
    onMemoEvent(uint32_t tag, uint32_t payload) override
    {
        for (AnnotListener *l : listeners)
            if (l->wantsMemoEvents())
                l->onMemoEvent(tag, payload);
    }

    void
    addListener(AnnotListener *l)
    {
        listeners.push_back(l);
        ++generation_;
    }

    void
    removeListener(AnnotListener *l)
    {
        for (size_t i = 0; i < listeners.size(); ++i) {
            if (listeners[i] == l) {
                listeners.erase(listeners.begin() + i);
                ++generation_;
                return;
            }
        }
    }

    /**
     * Listeners whose ignoresTag answers depend on mutable state (bin
     * timelines being armed, trace buffers resizing) call this after such
     * a change so the core re-queries purity at the next session start.
     */
    void notePurityChanged() { ++generation_; }

    sim::Core &core() { return core_; }

  private:
    sim::Core &core_;
    std::vector<AnnotListener *> listeners;
    uint64_t generation_ = 0;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_BUS_H
