/**
 * @file
 * AOT-call profiler (Table III).
 *
 * Tracks kAotEnter/kAotExit annotations and attributes cycles to the
 * *outermost* AOT entry point, matching the paper: "if these functions
 * call other functions, the time spent in the called functions is also
 * counted as part of these entry points". Only calls made from
 * JIT-compiled code (i.e., while the JitCall phase is active) are
 * attributed, which is how the paper separates the JIT-call phase from
 * interpreter-initiated runtime calls.
 */

#ifndef XLVM_XLAYER_AOT_PROFILER_H
#define XLVM_XLAYER_AOT_PROFILER_H

#include <cstdint>
#include <string>
#include <vector>

#include "xlayer/bus.h"

namespace xlvm {
namespace xlayer {

/** Aggregated statistics for one AOT entry point. */
struct AotFunctionStats
{
    uint32_t fnId = 0;
    uint64_t calls = 0;
    double cycles = 0.0;
};

class AotCallProfiler : public AnnotListener
{
  public:
    explicit AotCallProfiler(AnnotationBus &bus);
    ~AotCallProfiler() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    bool
    ignoresTag(uint32_t tag) const override
    {
        return tag != kAotEnter && tag != kAotExit;
    }

    /**
     * Per-function stats sorted by descending cycles.
     * @param min_share only functions with at least this share of
     *        total cycles (the paper uses 0.10).
     */
    std::vector<AotFunctionStats>
    significantFunctions(double min_share = 0.0) const;

    uint64_t totalCalls() const { return nCalls; }

  private:
    AnnotationBus &bus_;
    /// (fnId, entry cycles) of active calls; index 0 is outermost.
    std::vector<std::pair<uint32_t, double>> active;
    std::vector<AotFunctionStats> perFn; ///< indexed by fnId
    uint64_t nCalls = 0;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_AOT_PROFILER_H
