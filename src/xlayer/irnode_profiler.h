/**
 * @file
 * JIT-IR-level profiler (Figures 6, 8, 9).
 *
 * The JIT backend emits a kIrNode annotation, tagged with a global IR node
 * id, immediately before the lowered machine code of each compiled IR node
 * executes. Counting these gives per-node dynamic execution counts; the
 * driver joins them with backend metadata (opcode type, lowered length) to
 * produce the compiled/executed IR statistics of the paper.
 */

#ifndef XLVM_XLAYER_IRNODE_PROFILER_H
#define XLVM_XLAYER_IRNODE_PROFILER_H

#include <cstdint>
#include <vector>

#include "xlayer/bus.h"

namespace xlvm {
namespace xlayer {

class IrNodeProfiler : public AnnotListener
{
  public:
    explicit IrNodeProfiler(AnnotationBus &bus);
    ~IrNodeProfiler() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    bool ignoresTag(uint32_t tag) const override { return tag != kIrNode; }

    /** Dynamic execution count per global IR node id. */
    const std::vector<uint64_t> &execCounts() const { return counts; }

    uint64_t totalExecuted() const { return total; }

  private:
    AnnotationBus &bus_;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_IRNODE_PROFILER_H
