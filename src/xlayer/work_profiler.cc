#include "xlayer/work_profiler.h"

#include "xlayer/annot.h"

namespace xlvm {
namespace xlayer {

WorkRateProfiler::WorkRateProfiler(AnnotationBus &bus,
                                   uint64_t sample_instrs)
    : bus_(bus), sampleInstrs(sample_instrs), nextSample(sample_instrs)
{
    bus_.addListener(this);
}

WorkRateProfiler::~WorkRateProfiler()
{
    bus_.removeListener(this);
}

void
WorkRateProfiler::takeSample()
{
    WorkSample s;
    s.instructions = bus_.core().totalInstructions();
    s.cycles = bus_.core().totalCycles();
    s.work = work;
    samples_.push_back(s);
}

void
WorkRateProfiler::onAnnot(uint32_t tag, uint32_t payload)
{
    if (tag != kDispatch)
        return;
    ++work;
    if (payload >= opcodes.size())
        opcodes.resize(payload + 1, 0);
    ++opcodes[payload];
    if (bus_.core().totalInstructions() >= nextSample) {
        takeSample();
        nextSample += sampleInstrs;
    }
}

void
WorkRateProfiler::finalize()
{
    takeSample();
}

uint64_t
breakEvenInstructions(const std::vector<WorkSample> &curve,
                      double baseline_work_per_instr)
{
    if (baseline_work_per_instr <= 0.0)
        return 0;
    for (const WorkSample &s : curve) {
        double baseline_work = baseline_work_per_instr * s.instructions;
        if (double(s.work) >= baseline_work)
            return s.instructions;
    }
    return UINT64_MAX;
}

} // namespace xlayer
} // namespace xlvm
