/**
 * @file
 * Streaming cross-layer event tracer.
 *
 * The aggregate profilers (phase/event/work/IR) keep lossy summaries;
 * the tracer is the complementary instrument: it subscribes to the
 * AnnotationBus and appends one fixed-size binary record per observed
 * annotation — simulated-cycle timestamp, tag, payload, active phase,
 * run id — into a chunked in-memory ring buffer. This is the analog of
 * the paper's PinTool event stream: after a run the full event sequence
 * can be replayed, filtered, summarized, or exported as a Chrome
 * trace-event file (see report/trace_export.h and tools/xlvm-trace).
 *
 * Overhead discipline:
 *  - Disabled (capacityEvents == 0): the tracer never subscribes to the
 *    bus, so the annotation hot path pays nothing beyond the bus's
 *    existing listener loop — not even a branch inside the tracer.
 *  - Enabled: one tag-mask test, one O(buckets) timestamp read, and one
 *    store into a pre-decoded ring slot. No allocation after a chunk is
 *    first touched, no I/O during the run.
 *
 * Ring semantics: the buffer holds the most recent capacityEvents
 * records. When full it wraps and overwrites the oldest records, each
 * overwrite counted in droppedEvents() — so long runs keep the tail of
 * the timeline (where the interesting deopt/GC usually is) and the drop
 * counter tells you exactly how much head was lost. Raise the capacity
 * (--trace-buffer-events in the bench harness) to keep more.
 */

#ifndef XLVM_XLAYER_TRACER_H
#define XLVM_XLAYER_TRACER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "xlayer/annot.h"
#include "xlayer/bus.h"

namespace xlvm {
namespace xlayer {

/** One streamed event record (fixed 24-byte binary layout). */
struct TraceRecord
{
    uint64_t cyclesFp;  ///< simulated timestamp, sim::kCycleFp units
    uint32_t tag;       ///< AnnotTag
    uint32_t payload;   ///< tag-specific payload (trace/guard/phase id)
    uint8_t phase;      ///< counter bucket in effect *after* the event
    uint8_t runId;      ///< run identity within a sweep
    uint16_t reserved0; ///< zero; explicit so the layout is fully pinned
    uint32_t reserved1; ///< zero (tail padding made explicit)
};

static_assert(sizeof(TraceRecord) == 24,
              "TraceRecord must stay a fixed 24-byte record");

/** Cross-layer gauge sample attached to framework events. */
struct TraceCounterSample
{
    uint64_t cyclesFp;        ///< simulated timestamp, kCycleFp units
    uint64_t heapBytes;       ///< live young+old heap bytes
    uint64_t traceCacheBytes; ///< JIT code-arena bytes emitted so far
};

/** Bit for @p tag in a tag mask (tags are small, see AnnotTag). */
constexpr uint32_t
traceTagBit(uint32_t tag)
{
    return 1u << tag;
}

/**
 * Default recording mask: every framework-level event (phases, JIT
 * lifecycle, trace entry/exit, deopt, GC, app events) plus the rare
 * sim-memoization events (misses and invalidations). The per-dispatch
 * and per-IR-node firehoses (kDispatch, kIrNode), the per-call AOT
 * pair (kAotEnter/kAotExit), and per-block kMemoHit are excluded — they
 * are well covered by the aggregate profilers and would flush the ring
 * within milliseconds (opt into hits with --trace-tags).
 */
constexpr uint32_t kDefaultTraceTagMask =
    traceTagBit(kPhaseEnter) | traceTagBit(kPhaseExit) |
    traceTagBit(kLoopCompiled) | traceTagBit(kBridgeCompiled) |
    traceTagBit(kTraceAborted) | traceTagBit(kTraceEnter) |
    traceTagBit(kTraceLeave) | traceTagBit(kDeopt) |
    traceTagBit(kGcMinor) | traceTagBit(kGcMajor) |
    traceTagBit(kAppEvent) | traceTagBit(kMemoInvalidate) |
    traceTagBit(kMemoMiss) | traceTagBit(kTierUp) |
    traceTagBit(kTier1Compile) | traceTagBit(kSuperblockDiverge);

/** All memo telemetry tags (out-of-band channel, see AnnotListener).
 *  kSuperblockHit is per-iteration (one event per replayed loop trip),
 *  so like kMemoHit it is excluded from the default recording mask. */
constexpr uint32_t kMemoEventTagMask =
    traceTagBit(kMemoHit) | traceTagBit(kMemoInvalidate) |
    traceTagBit(kMemoMiss) | traceTagBit(kSuperblockHit) |
    traceTagBit(kSuperblockDiverge);

/** Tags that additionally snapshot the cross-layer counter gauges. */
constexpr uint32_t kCounterSampleTagMask =
    traceTagBit(kLoopCompiled) | traceTagBit(kBridgeCompiled) |
    traceTagBit(kTraceAborted) | traceTagBit(kDeopt) |
    traceTagBit(kGcMinor) | traceTagBit(kGcMajor) |
    traceTagBit(kTierUp) | traceTagBit(kTier1Compile);

struct TracerOptions
{
    /** Ring capacity in events; 0 disables the tracer entirely. */
    uint64_t capacityEvents = 0;
    /** Which AnnotTags to record (bit per tag). */
    uint32_t tagMask = kDefaultTraceTagMask;
    /** Run identity stamped into every record. */
    uint8_t runId = 0;
};

/**
 * One run's trace, moved out of the tracer when the run completes
 * (EventTracer::take). Events are ordered oldest-to-newest; when the
 * ring wrapped, droppedEvents records were overwritten at the head.
 */
struct TraceLog
{
    std::vector<TraceRecord> events;
    std::vector<TraceCounterSample> counters;
    uint64_t recordedEvents = 0; ///< total ever recorded (incl. dropped)
    uint64_t droppedEvents = 0;  ///< overwritten by ring wraparound
    uint64_t droppedCounters = 0;
    uint64_t capacityEvents = 0;
};

class EventTracer : public AnnotListener
{
  public:
    /** Records are grouped into lazily allocated chunks of this size. */
    static constexpr size_t kChunkEvents = 4096;

    EventTracer(AnnotationBus &bus, const TracerOptions &opts);
    ~EventTracer() override;

    void onAnnot(uint32_t tag, uint32_t payload) override;

    bool
    ignoresTag(uint32_t tag) const override
    {
        return capacity_ == 0 || tag >= 32 || !((tagMask_ >> tag) & 1u);
    }

    bool
    wantsMemoEvents() const override
    {
        return capacity_ != 0 && (tagMask_ & kMemoEventTagMask) != 0;
    }

    /** Memo events share the annotation record format and ring. */
    void
    onMemoEvent(uint32_t tag, uint32_t payload) override
    {
        onAnnot(tag, payload);
    }

    bool enabled() const { return capacity_ != 0; }
    uint64_t capacityEvents() const { return capacity_; }

    /** Total events ever recorded, including overwritten ones. */
    uint64_t recordedEvents() const { return total_; }

    /** Events lost to ring wraparound. */
    uint64_t
    droppedEvents() const
    {
        return total_ > capacity_ ? total_ - capacity_ : 0;
    }

    /** Live records currently held (<= capacityEvents). */
    size_t
    size() const
    {
        return size_t(total_ > capacity_ ? capacity_ : total_);
    }

    /** Live record @p i, 0 = oldest surviving event. */
    const TraceRecord &at(size_t i) const;

    const std::vector<TraceCounterSample> &
    counterSamples() const
    {
        return counters_;
    }

    uint64_t droppedCounterSamples() const { return droppedCounters_; }

    /**
     * Install the gauge snapshot callback invoked for tags in
     * kCounterSampleTagMask (cyclesFp is filled in by the tracer).
     */
    void
    setCounterSampler(std::function<TraceCounterSample()> sampler)
    {
        sampler_ = std::move(sampler);
    }

    /** Move the whole trace out (oldest-first) and reset the ring;
     *  events recorded afterwards start a fresh buffer. */
    TraceLog take();

  private:
    using Chunk = std::unique_ptr<TraceRecord[]>;

    AnnotationBus &bus_;
    uint64_t capacity_;
    uint32_t tagMask_;
    uint8_t runId_;
    bool subscribed_ = false;
    uint64_t total_ = 0; ///< events ever recorded
    std::vector<Chunk> chunks_;
    std::vector<TraceCounterSample> counters_;
    uint64_t droppedCounters_ = 0;
    std::function<TraceCounterSample()> sampler_;
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_TRACER_H
