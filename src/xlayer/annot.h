/**
 * @file
 * Cross-layer annotation tag vocabulary.
 *
 * An annotation is a (tag, payload) pair carried by a sim::InstClass::Annot
 * instruction — the analog of the paper's x86 `nop` with a unique address
 * serving as the tag. Annotations are *inserted* at higher layers
 * (application, interpreter dispatch loop, JIT framework, IR lowering) and
 * *collected* at the instruction layer by the AnnotationBus, the analog of
 * the custom PinTool.
 */

#ifndef XLVM_XLAYER_ANNOT_H
#define XLVM_XLAYER_ANNOT_H

#include <cstdint>

namespace xlvm {
namespace xlayer {

enum AnnotTag : uint32_t
{
    /** Framework level: phase transitions. payload = Phase. */
    kPhaseEnter = 1,
    kPhaseExit = 2,

    /**
     * Interpreter level: beginning of one dispatch-loop iteration.
     * payload = opcode. This is the paper's unit of "work" that stays
     * valid across interpreter, tracing, and JIT execution.
     */
    kDispatch = 3,

    /** Framework level: JIT compilation lifecycle. payload = trace id. */
    kLoopCompiled = 4,
    kBridgeCompiled = 5,
    kTraceAborted = 6,

    /** Framework level: trace execution entry/exit. payload = trace id. */
    kTraceEnter = 7,
    kTraceLeave = 8,

    /** Framework level: deoptimization. payload = guard id. */
    kDeopt = 9,

    /** Framework level: GC events. payload = collection ordinal. */
    kGcMinor = 10,
    kGcMajor = 11,

    /**
     * Runtime level: AOT-compiled function entry/exit.
     * payload = AOT function id.
     */
    kAotEnter = 12,
    kAotExit = 13,

    /**
     * JIT-IR level: emitted when the lowered code of one IR node begins
     * executing. payload = global IR node id.
     */
    kIrNode = 14,

    /** Application level: user-defined event. payload = event id. */
    kAppEvent = 15,

    /**
     * Sim level: block-memoization telemetry. Unlike the tags above these
     * are not carried by Annot instructions (that would perturb the very
     * counters memoization must preserve); they arrive out of band via
     * AnnotSink::onMemoEvent and are only delivered to listeners that
     * opt in with wantsMemoEvents(). payload = hash of the block key.
     */
    kMemoHit = 16,
    kMemoInvalidate = 17,
    kMemoMiss = 18,

    /**
     * Framework level: multi-tier JIT lifecycle. kTier1Compile marks a
     * baseline (unoptimized) compile — emitted alongside kLoopCompiled /
     * kBridgeCompiled, which keep meaning "a trace was registered".
     * kTierUp marks a tier-1 trace re-optimized in place to tier 2.
     * payload = trace id.
     */
    kTierUp = 19,
    kTier1Compile = 20,

    /**
     * Sim level: superblock-replay telemetry (same out-of-band channel
     * as the kMemo* tags). kSuperblockHit marks one whole-segment
     * counter-delta replay, kSuperblockDiverge marks a sweep that had to
     * fall back to live stepping mid-iteration. payload = hash of the
     * stream's codePc.
     */
    kSuperblockHit = 21,
    kSuperblockDiverge = 22,

    /**
     * Framework level: fault containment (schema v7). kTraceAborted
     * (tag 6) carries a jit::AbortReason as payload from v7 on.
     * kTraceBlacklisted marks a compiled trace demoted to the
     * interpreter after a deopt storm, kTraceRearmed its re-enable
     * after cooldown, kTraceEvicted a root (plus bridges) dropped
     * under trace-cache pressure, and kCompileDowngrade a compile
     * retried at tier 1 (budget cap, optimizer failure or injected
     * fault). payload = trace id.
     */
    kTraceBlacklisted = 23,
    kTraceRearmed = 24,
    kTraceEvicted = 25,
    kCompileDowngrade = 26,
};

} // namespace xlayer
} // namespace xlvm

#endif // XLVM_XLAYER_ANNOT_H
