#include "xlayer/tracer.h"

#include "common/logging.h"

namespace xlvm {
namespace xlayer {

EventTracer::EventTracer(AnnotationBus &bus, const TracerOptions &opts)
    : bus_(bus),
      capacity_(opts.capacityEvents),
      tagMask_(opts.tagMask),
      runId_(opts.runId)
{
    if (capacity_ != 0) {
        bus_.addListener(this);
        subscribed_ = true;
        chunks_.reserve(size_t((capacity_ + kChunkEvents - 1) /
                               kChunkEvents));
    }
}

EventTracer::~EventTracer()
{
    if (subscribed_)
        bus_.removeListener(this);
}

void
EventTracer::onAnnot(uint32_t tag, uint32_t payload)
{
    if (capacity_ == 0 || tag >= 32 || !((tagMask_ >> tag) & 1u))
        return;

    const uint64_t cyclesFp = bus_.core().totalCyclesFp();

    uint64_t slot = total_ % capacity_;
    size_t chunkIdx = size_t(slot / kChunkEvents);
    if (chunkIdx >= chunks_.size()) {
        chunks_.resize(chunkIdx + 1);
        chunks_[chunkIdx] = Chunk(new TraceRecord[kChunkEvents]);
    }
    TraceRecord &r = chunks_[chunkIdx][slot % kChunkEvents];
    r.cyclesFp = cyclesFp;
    r.tag = tag;
    r.payload = payload;
    r.phase = uint8_t(bus_.core().currentBucket());
    r.runId = runId_;
    r.reserved0 = 0;
    r.reserved1 = 0;
    ++total_;

    if (sampler_ && ((kCounterSampleTagMask >> tag) & 1u)) {
        if (counters_.size() < capacity_) {
            TraceCounterSample s = sampler_();
            s.cyclesFp = cyclesFp;
            counters_.push_back(s);
        } else {
            ++droppedCounters_;
        }
    }
}

const TraceRecord &
EventTracer::at(size_t i) const
{
    XLVM_ASSERT(i < size(), "trace record index out of range");
    uint64_t first = total_ > capacity_ ? total_ - capacity_ : 0;
    uint64_t slot = (first + i) % capacity_;
    return chunks_[size_t(slot / kChunkEvents)][slot % kChunkEvents];
}

TraceLog
EventTracer::take()
{
    TraceLog log;
    log.recordedEvents = total_;
    log.droppedEvents = droppedEvents();
    log.droppedCounters = droppedCounters_;
    log.capacityEvents = capacity_;
    log.events.reserve(size());
    for (size_t i = 0; i < size(); ++i)
        log.events.push_back(at(i));
    log.counters = std::move(counters_);
    counters_.clear();
    total_ = 0;
    droppedCounters_ = 0;
    return log;
}

} // namespace xlayer
} // namespace xlvm
