/**
 * @file
 * Tests for the thread-pool benchmark harness: the parallel path must
 * produce results bit-identical to sequential execution (same counters,
 * same output, any job count), keep input ordering, and convert a
 * throwing run into a failed RunResult without killing its siblings.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/parallel.h"
#include "driver/runner.h"

namespace xlvm {
namespace {

using driver::RunOptions;
using driver::RunResult;
using driver::VmKind;

RunOptions
opts(const std::string &workload, VmKind vm)
{
    RunOptions o;
    o.workload = workload;
    o.vm = vm;
    o.scale = 60;
    o.loopThreshold = 25;
    o.bridgeThreshold = 12;
    o.maxInstructions = 200u * 1000 * 1000;
    return o;
}

/** A mixed sweep: interpreter, nojit, JIT, and both MiniRkt kinds. */
std::vector<RunOptions>
mixedSweep()
{
    return {
        opts("crypto_pyaes", VmKind::CPythonLike),
        opts("chaos", VmKind::PyPyJit),
        opts("richards", VmKind::PyPyNoJit),
        opts("mandelbrot", VmKind::PycketJit),
        opts("nbody", VmKind::RacketLike),
        opts("float", VmKind::PyPyJit),
        opts("spectral_norm", VmKind::PyPyJit),
    };
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.work, b.work);
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        const sim::PerfCounters &ca = a.phaseCounters[p];
        const sim::PerfCounters &cb = b.phaseCounters[p];
        EXPECT_EQ(ca.instructions, cb.instructions) << "phase " << p;
        EXPECT_EQ(ca.cyclesFp, cb.cyclesFp) << "phase " << p;
        EXPECT_EQ(ca.branches, cb.branches) << "phase " << p;
        EXPECT_EQ(ca.condBranches, cb.condBranches) << "phase " << p;
        EXPECT_EQ(ca.mispredicts, cb.mispredicts) << "phase " << p;
        EXPECT_EQ(ca.loads, cb.loads) << "phase " << p;
        EXPECT_EQ(ca.stores, cb.stores) << "phase " << p;
        EXPECT_EQ(ca.icacheMisses, cb.icacheMisses) << "phase " << p;
        EXPECT_EQ(ca.dcacheMisses, cb.dcacheMisses) << "phase " << p;
    }
}

TEST(Parallel, MatchesSequentialAtAnyJobCount)
{
    std::vector<RunOptions> runs = mixedSweep();
    std::vector<RunResult> seq = driver::runWorkloadsParallel(runs, 1);
    ASSERT_EQ(seq.size(), runs.size());
    for (const RunResult &r : seq) {
        EXPECT_TRUE(r.completed) << r.error;
        EXPECT_TRUE(r.error.empty()) << r.error;
    }

    for (unsigned jobs : {2u, 8u}) {
        std::vector<RunResult> par =
            driver::runWorkloadsParallel(runs, jobs);
        ASSERT_EQ(par.size(), runs.size());
        for (size_t i = 0; i < runs.size(); ++i) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " run #" +
                         std::to_string(i) + " (" + runs[i].workload +
                         ")");
            expectIdentical(seq[i], par[i]);
        }
    }
}

TEST(Parallel, FailedRunDoesNotKillSiblings)
{
    std::vector<RunOptions> runs = {
        opts("crypto_pyaes", VmKind::CPythonLike),
        opts("no_such_workload", VmKind::PyPyJit),
        opts("chaos", VmKind::PyPyJit),
        // runWorkload can't model the Racket-family kinds, but the
        // harness dispatches them to runRktWorkload; a PyPy-suite-only
        // workload still has no MiniRkt translation and must fail.
        opts("richards", VmKind::PycketJit),
    };
    std::vector<RunResult> res = driver::runWorkloadsParallel(runs, 4);
    ASSERT_EQ(res.size(), 4u);

    EXPECT_TRUE(res[0].completed);
    EXPECT_TRUE(res[0].error.empty());

    EXPECT_FALSE(res[1].completed);
    EXPECT_NE(res[1].error.find("no_such_workload"), std::string::npos)
        << res[1].error;

    EXPECT_TRUE(res[2].completed);
    EXPECT_TRUE(res[2].error.empty());

    EXPECT_FALSE(res[3].completed);
    EXPECT_FALSE(res[3].error.empty());
}

TEST(Parallel, ZeroJobsMeansDefaultAndEmptyIsFine)
{
    EXPECT_TRUE(driver::runWorkloadsParallel({}, 0).empty());
    std::vector<RunOptions> one = {opts("float", VmKind::CPythonLike)};
    std::vector<RunResult> res = driver::runWorkloadsParallel(one, 0);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_TRUE(res[0].completed) << res[0].error;
}

TEST(Parallel, DefaultJobsHonorsEnv)
{
    ::setenv("XLVM_JOBS", "3", 1);
    EXPECT_EQ(driver::defaultJobs(), 3u);
    ::setenv("XLVM_JOBS", "bogus", 1);
    unsigned fallback = driver::defaultJobs();
    EXPECT_GE(fallback, 1u);
    ::unsetenv("XLVM_JOBS");
    EXPECT_GE(driver::defaultJobs(), 1u);
}

TEST(Parallel, JobsFromArgs)
{
    ::unsetenv("XLVM_JOBS");
    const char *a1[] = {"prog", "--jobs", "5"};
    EXPECT_EQ(driver::jobsFromArgs(3, const_cast<char **>(a1)), 5u);
    const char *a2[] = {"prog", "--jobs=7"};
    EXPECT_EQ(driver::jobsFromArgs(2, const_cast<char **>(a2)), 7u);
    const char *a3[] = {"prog", "-j", "2"};
    EXPECT_EQ(driver::jobsFromArgs(3, const_cast<char **>(a3)), 2u);
    const char *a4[] = {"prog"};
    EXPECT_GE(driver::jobsFromArgs(1, const_cast<char **>(a4)), 1u);
}

} // namespace
} // namespace xlvm
