/**
 * @file
 * vm-layer unit tests: trace registry, executor on hand-built traces,
 * blackhole materialization (including virtual reconstruction), and the
 * GC phase hooks.
 */

#include <gtest/gtest.h>

#include "jit/opt.h"
#include "jit/recorder.h"
#include "vm/context.h"

namespace xlvm {
namespace vm {
namespace {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::RtVal;

jit::Snapshot
frameSnap(void *code, uint32_t pc, std::vector<int32_t> stack)
{
    jit::Snapshot s;
    jit::FrameSnapshot f;
    f.code = code;
    f.pc = pc;
    f.stack = std::move(stack);
    s.frames.push_back(std::move(f));
    return s;
}

/**
 * Build and register "while i < limit: i = i + 1" over boxed ints, the
 * canonical meta-trace: guard_class, getfield, int_lt+guard, add+ovf
 * guard, new/setfield (virtualized), jump.
 */
jit::Trace *
registerCountingLoop(VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 7, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    EXPECT_TRUE(rec.atMergePoint(0, [&] {
        return frameSnap(code, 7, {in0});
    }));
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});

    jit::OptParams op;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<obj::W_Object *>(p)->typeId())
                 : 0u;
    };
    auto optimized =
        std::make_unique<jit::Trace>(jit::optimize(rec.take(), op));
    optimized->id = ctx.registry.nextId();
    ctx.backend.compile(*optimized);
    return ctx.registry.add(std::move(optimized));
}

TEST(Registry, LoopLookupByAnchor)
{
    VmContext ctx;
    int codeA, codeB;
    jit::Trace *t = registerCountingLoop(ctx, &codeA, 5);
    EXPECT_EQ(ctx.registry.loopFor(&codeA, 7), t);
    EXPECT_EQ(ctx.registry.loopFor(&codeA, 8), nullptr);
    EXPECT_EQ(ctx.registry.loopFor(&codeB, 7), nullptr);
    EXPECT_EQ(ctx.registry.byId(t->id), t);
}

TEST(Executor, RunsLoopToExitGuard)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 100);

    obj::W_Int *start = ctx.space.newInt(0);
    DeoptResult res =
        ctx.executor.run(*t, {RtVal::fromRef(start)});

    // The loop counts to 100, then the int_lt guard fails.
    ASSERT_EQ(res.frames.size(), 1u);
    EXPECT_EQ(res.frames[0].code, &code);
    EXPECT_EQ(res.frames[0].pc, 7u);
    ASSERT_EQ(res.frames[0].stack.size(), 1u);
    obj::W_Object *out = res.frames[0].stack[0];
    ASSERT_EQ(out->typeId(), obj::kTypeInt);
    EXPECT_EQ(static_cast<obj::W_Int *>(out)->value, 100);
    EXPECT_EQ(ctx.executor.deoptCount(), 1u);
    EXPECT_GE(ctx.executor.iterationCount(), 100u);
}

TEST(Executor, EmitsJitPhaseAndDispatchWork)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 50);
    ctx.executor.run(*t, {RtVal::fromRef(ctx.space.newInt(0))});
    ctx.work.finalize();
    // The debug_merge_point in the trace carries the dispatch
    // annotation: work advances inside JIT code.
    EXPECT_GE(ctx.work.totalWork(), 50u);
    EXPECT_GT(ctx.phases.phaseCounters(xlayer::Phase::Jit).cycles(),
              0.0);
    EXPECT_GT(
        ctx.phases.phaseCounters(xlayer::Phase::Blackhole).cycles(),
        0.0);
}

TEST(Executor, GuardFailureCountsAccumulate)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 3);
    for (int i = 0; i < 5; ++i)
        ctx.executor.run(*t, {RtVal::fromRef(ctx.space.newInt(0))});
    uint32_t exitGuardFails = 0;
    for (const jit::GuardState &g : t->guardStates)
        exitGuardFails = std::max(exitGuardFails, g.failCount);
    EXPECT_EQ(exitGuardFails, 5u);
    EXPECT_EQ(t->executions, 5u * 4u); // 3 iterations + entry per run
}

TEST(Executor, HotGuardRequestedAtThreshold)
{
    VmConfig cfg;
    cfg.jit.bridgeThreshold = 3;
    VmContext ctx(cfg);
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 2);
    for (int i = 0; i < 3; ++i)
        ctx.executor.run(*t, {RtVal::fromRef(ctx.space.newInt(0))});
    ASSERT_FALSE(ctx.executor.hotGuards.empty());
    EXPECT_EQ(ctx.executor.hotGuards[0].first, t->id);
}

TEST(Blackhole, MaterializesVirtualObjects)
{
    VmContext ctx;
    jit::Trace t;
    t.boxTypes = {BoxType::Int};
    // One virtual W_Int whose value field is box 0.
    jit::VirtualObj vo;
    vo.typeId = obj::kTypeInt;
    vo.fieldRefs = {0};
    vo.numFields = 1;
    t.virtuals.push_back(vo);

    jit::Snapshot snap;
    jit::FrameSnapshot fs;
    int code;
    fs.code = &code;
    fs.pc = 3;
    fs.stack = {jit::makeVirtualRef(0)};
    snap.frames.push_back(fs);

    std::vector<RtVal> regs = {RtVal::fromInt(42)};
    DeoptResult res =
        blackholeMaterialize(ctx.space, t, snap, regs, 0);
    ASSERT_EQ(res.frames.size(), 1u);
    ASSERT_EQ(res.frames[0].stack.size(), 1u);
    obj::W_Object *w = res.frames[0].stack[0];
    ASSERT_EQ(w->typeId(), obj::kTypeInt);
    EXPECT_EQ(static_cast<obj::W_Int *>(w)->value, 42);
}

TEST(Blackhole, SharedVirtualMaterializedOnce)
{
    VmContext ctx;
    jit::Trace t;
    jit::VirtualObj vo;
    vo.typeId = obj::kTypePair;
    vo.fieldRefs = {kNoArg, kNoArg};
    vo.numFields = 2;
    t.virtuals.push_back(vo);

    jit::Snapshot snap;
    jit::FrameSnapshot fs;
    fs.stack = {jit::makeVirtualRef(0), jit::makeVirtualRef(0)};
    snap.frames.push_back(fs);

    std::vector<RtVal> regs;
    DeoptResult res =
        blackholeMaterialize(ctx.space, t, snap, regs, 0);
    EXPECT_EQ(res.frames[0].stack[0], res.frames[0].stack[1]);
}

TEST(Blackhole, CyclicVirtualsTerminate)
{
    VmContext ctx;
    jit::Trace t;
    // pair.car -> itself.
    jit::VirtualObj vo;
    vo.typeId = obj::kTypePair;
    vo.fieldRefs = {jit::makeVirtualRef(0), kNoArg};
    vo.numFields = 2;
    t.virtuals.push_back(vo);

    jit::Snapshot snap;
    jit::FrameSnapshot fs;
    fs.stack = {jit::makeVirtualRef(0)};
    snap.frames.push_back(fs);

    std::vector<RtVal> regs;
    DeoptResult res =
        blackholeMaterialize(ctx.space, t, snap, regs, 0);
    auto *p = static_cast<obj::W_Pair *>(res.frames[0].stack[0]);
    ASSERT_EQ(p->typeId(), obj::kTypePair);
    EXPECT_EQ(p->car, p); // the cycle survived materialization
}

/**
 * Soundness contract between the optimizer and the blackhole: the
 * optimizer virtualizes EVERY NewWithVtable optimistically, so every
 * type the tracer allocates must be rebuildable by allocByTypeId and
 * its fields must round-trip through rtSetField/rtGetField — the exact
 * path deopt takes when a virtual escapes into the resume state.
 */
class VirtualRebuild : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(VirtualRebuild, AllocAndFieldRoundTrip)
{
    VmContext ctx;
    obj::ObjSpace &sp = ctx.space;
    uint32_t tid = GetParam();
    obj::W_Object *w = allocByTypeId(sp, tid);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->typeId(), tid);

    auto roundTripInt = [&](uint32_t f, int64_t v) {
        w->rtSetField(f, RtVal::fromInt(v), ctx.heap);
        EXPECT_EQ(w->rtGetField(f).i, v) << "field " << f;
    };
    auto roundTripRef = [&](uint32_t f, obj::W_Object *v) {
        w->rtSetField(f, RtVal::fromRef(v), ctx.heap);
        EXPECT_EQ(w->rtGetField(f).r, v) << "field " << f;
    };

    switch (tid) {
      case obj::kTypeInt:
      case obj::kTypeBool:
        roundTripInt(obj::kFieldValue, tid == obj::kTypeBool ? 1 : 42);
        break;
      case obj::kTypeFloat:
        w->rtSetField(obj::kFieldValue, RtVal::fromFloat(2.5),
                      ctx.heap);
        EXPECT_EQ(w->rtGetField(obj::kFieldValue).f, 2.5);
        break;
      case obj::kTypeCell:
        roundTripRef(obj::kFieldValue, sp.newInt(9));
        break;
      case obj::kTypeListIter:
        roundTripInt(obj::kFieldIterIndex, 3);
        roundTripRef(obj::kFieldIterTarget, sp.newList());
        break;
      case obj::kTypeStrIter:
        roundTripInt(obj::kFieldIterIndex, 1);
        roundTripRef(obj::kFieldIterTarget, sp.newStr("ab"));
        break;
      case obj::kTypeTupleIter:
        roundTripInt(obj::kFieldIterIndex, 0);
        roundTripRef(obj::kFieldIterTarget, sp.newTuple({}));
        break;
      case obj::kTypeRangeIter:
        roundTripInt(obj::kFieldRangeCur, 4);
        roundTripInt(obj::kFieldRangeStop, 10);
        roundTripInt(obj::kFieldRangeStep, 2);
        break;
      case obj::kTypeBoundMethod:
        roundTripRef(obj::kFieldBoundSelf, sp.newInt(1));
        roundTripRef(obj::kFieldBoundFunc, sp.newInt(2));
        break;
      case obj::kTypePair:
        roundTripRef(obj::kFieldCar, sp.newInt(1));
        roundTripRef(obj::kFieldCdr, sp.none());
        break;
      case obj::kTypeInstance:
        // Field semantics (map install restoring cls) are covered by
        // the workload agreement suite; here only rebuild must work.
        break;
      default:
        FAIL() << "unexpected type id " << tid;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVirtualizable, VirtualRebuild,
    ::testing::Values(obj::kTypeInt, obj::kTypeFloat, obj::kTypeBool,
                      obj::kTypeCell, obj::kTypeListIter,
                      obj::kTypeRangeIter, obj::kTypeTupleIter,
                      obj::kTypeStrIter, obj::kTypeBoundMethod,
                      obj::kTypeInstance, obj::kTypePair),
    [](const ::testing::TestParamInfo<uint32_t> &info) {
        return std::string(obj::typeName(info.param));
    });

TEST(GcHooks, CollectionsLandInGcPhase)
{
    VmConfig cfg;
    cfg.heap.nurseryBytes = 2048;
    VmContext ctx(cfg);
    for (int i = 0; i < 200; ++i)
        ctx.space.newStr(std::string(64, 'x'));
    ctx.heap.safepoint();
    EXPECT_GT(ctx.heap.stats().minorCollections, 0u);
    EXPECT_GT(ctx.phases.phaseCounters(xlayer::Phase::Gc).cycles(), 0.0);
    EXPECT_GT(ctx.events.gcMinor, 0u);
}

TEST(Registry, TraceConstsAreGcRoots)
{
    VmConfig cfg;
    cfg.heap.nurseryBytes = 1024;
    VmContext ctx(cfg);
    int code;
    // The counting loop pins no heap consts, so pin one by hand.
    jit::Trace *t = registerCountingLoop(ctx, &code, 5);
    obj::W_Str *pinned = ctx.space.newStr("pinned-by-trace");
    const_cast<jit::Trace *>(t)->addConst(RtVal::fromRef(pinned));
    ctx.heap.collect();
    ctx.heap.collectMajor();
    // Object must have survived both collections via the registry root.
    EXPECT_EQ(pinned->value, "pinned-by-trace");
}

} // namespace
} // namespace vm
} // namespace xlvm
