#include <gtest/gtest.h>

#include "minipy/interp.h"
#include "minirkt/compiler.h"
#include "minirkt/reader.h"
#include "vm/context.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace minirkt {
namespace {

std::string
runRkt(const std::string &src, bool jit, uint32_t threshold = 20)
{
    vm::VmConfig cfg;
    cfg.jit.enableJit = jit;
    cfg.jit.loopThreshold = threshold;
    cfg.jit.bridgeThreshold = 10;
    cfg.maxInstructions = 400u * 1000 * 1000;
    vm::VmContext ctx(cfg);
    auto prog = compileRkt(src, ctx.space);
    minipy::Interp interp(ctx, *prog);
    EXPECT_TRUE(interp.run());
    return interp.output();
}

void
checkAgreement(const std::string &src)
{
    std::string off = runRkt(src, false);
    std::string on = runRkt(src, true);
    EXPECT_EQ(off, on) << src;
    EXPECT_FALSE(off.empty());
}

TEST(Reader, ParsesAtomsAndLists)
{
    auto forms = readProgram("(+ 1 2.5 \"ab\" foo) ; comment\n(bar)");
    ASSERT_EQ(forms.size(), 2u);
    ASSERT_EQ(forms[0].items.size(), 5u);
    EXPECT_TRUE(forms[0].items[0].isSym("+"));
    EXPECT_EQ(forms[0].items[1].intValue, 1);
    EXPECT_DOUBLE_EQ(forms[0].items[2].floatValue, 2.5);
    EXPECT_EQ(forms[0].items[3].text, "ab");
    EXPECT_TRUE(forms[1].items[0].isSym("bar"));
}

TEST(Reader, QuoteAndNegativeNumbers)
{
    auto forms = readProgram("(cons '() -5)");
    ASSERT_EQ(forms.size(), 1u);
    EXPECT_TRUE(forms[0].items[1].items[0].isSym("quote"));
    EXPECT_EQ(forms[0].items[2].intValue, -5);
}

TEST(Rkt, ArithmeticAndDisplay)
{
    EXPECT_EQ(runRkt("(display (+ 1 2 3)) (newline)", false), "6\n");
    EXPECT_EQ(runRkt("(display (* 2.5 4)) (newline)", false), "10\n");
    EXPECT_EQ(runRkt("(display (quotient 7 2)) (display (modulo 7 2))",
                     false),
              "31");
}

TEST(Rkt, DefineAndCall)
{
    EXPECT_EQ(runRkt("(define (sq x) (* x x))\n"
                     "(display (sq 9)) (newline)",
                     false),
              "81\n");
}

TEST(Rkt, NamedLetLoop)
{
    EXPECT_EQ(runRkt("(define total 0)\n"
                     "(let loop ((i 0))\n"
                     "  (if (< i 10)\n"
                     "      (begin (set! total (+ total i))"
                     " (loop (+ i 1)))\n"
                     "      0))\n"
                     "(display total) (newline)",
                     false),
              "45\n");
}

TEST(Rkt, TailRecursiveDefine)
{
    EXPECT_EQ(runRkt("(define (count n acc)\n"
                     "  (if (= n 0) acc (count (- n 1) (+ acc 1))))\n"
                     "(display (count 100 0)) (newline)",
                     false),
              "100\n");
}

TEST(Rkt, PairsAndNull)
{
    EXPECT_EQ(runRkt("(define p (cons 1 (cons 2 '())))\n"
                     "(display (car p))\n"
                     "(display (car (cdr p)))\n"
                     "(display (null? (cdr (cdr p))))\n",
                     false),
              "12True");
}

TEST(Rkt, VectorsAndHashes)
{
    EXPECT_EQ(runRkt("(define v (make-vector 3 7))\n"
                     "(vector-set! v 1 9)\n"
                     "(display (+ (vector-ref v 0) (vector-ref v 1)))\n",
                     false),
              "16");
    EXPECT_EQ(runRkt("(define h (make-hash))\n"
                     "(hash-set! h 5 50)\n"
                     "(display (hash-ref h 5 0))\n"
                     "(display (hash-ref h 9 -1))\n",
                     false),
              "50-1");
}

TEST(Rkt, JitAgreementLoop)
{
    checkAgreement("(define total 0)\n"
                   "(let loop ((i 0))\n"
                   "  (if (< i 500)\n"
                   "      (begin (set! total (+ total (* i 2)))"
                   " (loop (+ i 1)))\n"
                   "      0))\n"
                   "(display total) (newline)");
}

TEST(Rkt, JitAgreementTailRecursion)
{
    checkAgreement("(define (sum n acc)\n"
                   "  (if (= n 0) acc (sum (- n 1) (+ acc n))))\n"
                   "(display (sum 400 0)) (newline)");
}

TEST(Rkt, JitAgreementConsTree)
{
    checkAgreement(
        "(define (make-tree d)\n"
        "  (if (= d 0) (cons '() '())\n"
        "      (cons (make-tree (- d 1)) (make-tree (- d 1)))))\n"
        "(define (check t)\n"
        "  (if (null? (car t)) 1\n"
        "      (+ 1 (check (car t)) (check (cdr t)))))\n"
        "(define total 0)\n"
        "(let loop ((i 0))\n"
        "  (if (< i 30)\n"
        "      (begin (set! total (+ total (check (make-tree 4))))\n"
        "             (loop (+ i 1)))\n"
        "      0))\n"
        "(display total) (newline)");
}

class RktWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RktWorkloads, CompilesRunsAndAgrees)
{
    // Search the CLBG suite directly: a same-named PyPy-suite workload
    // (without a Racket translation) would shadow it in findWorkload.
    const workloads::Workload *w = nullptr;
    for (const workloads::Workload &c : workloads::clbgSuite()) {
        if (c.name == GetParam())
            w = &c;
    }
    ASSERT_NE(w, nullptr);
    ASSERT_FALSE(w->rktSource.empty());
    workloads::Workload tmp = *w;
    tmp.source = tmp.rktSource;
    std::string src =
        workloads::instantiate(tmp, std::max<int64_t>(
                                        w->defaultScale / 8, 1));
    std::string off = runRkt(src, false);
    std::string on = runRkt(src, true);
    EXPECT_FALSE(off.empty()) << GetParam();
    EXPECT_EQ(off, on) << GetParam() << " diverges under JIT";
}

std::vector<std::string>
rktNames()
{
    std::vector<std::string> out;
    for (const workloads::Workload &w : workloads::clbgSuite()) {
        if (!w.rktSource.empty())
            out.push_back(w.name);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Clbg, RktWorkloads, ::testing::ValuesIn(rktNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace minirkt
} // namespace xlvm
