/**
 * @file
 * Trace-level superblock replay tests (sim/block_memo.h sweep mode).
 *
 * The superblock layer's contract is the same exactness bar as block
 * memoization, one level up: while a baked record stream is armed, whole
 * trace segments are replayed from precomputed deltas (or batch-swept),
 * and every modeled counter and every piece of machine state must stay
 * bit-identical with the layer on or off. The core-level tests here
 * hand-bake a StreamView over a known emission sequence and drive a
 * sweeping core against a plain stepping twin through the adversarial
 * cases: a guard outcome flipping mid-superblock, icache footprint
 * eviction between sessions, GC address recycling under an armed sweep,
 * resetStats() dropping a deferred span, and a trace re-lower changing
 * the stream identity under an unchanged codePc. Core-level streams
 * have no impure annotations (no sink is registered), so each iteration
 * lands as a single segment; the end-to-end differentials exercise
 * checkpoint-segmented streams through the real executor, where the
 * merge-point dispatch annotation splits every iteration.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "sim/block_memo.h"
#include "sim/emitter.h"

namespace xlvm {
namespace {

// ---- core-level differential harness ---------------------------------

sim::CoreParams
sweepParams(bool memo, bool superblock)
{
    sim::CoreParams p;
    p.simMemo = memo;
    p.simSuperblock = superblock;
    return p;
}

/** Every counter and cache statistic must agree between the two cores. */
void
expectCoresIdentical(sim::Core &sweep, sim::Core &step)
{
    sim::PerfCounters a = sweep.totalCounters();
    sim::PerfCounters b = step.totalCounters();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cyclesFp, b.cyclesFp);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.annotations, b.annotations);
    EXPECT_EQ(sweep.icacheUnit().hits(), step.icacheUnit().hits());
    EXPECT_EQ(sweep.icacheUnit().misses(), step.icacheUnit().misses());
    EXPECT_EQ(sweep.dcacheUnit().hits(), step.dcacheUnit().hits());
    EXPECT_EQ(sweep.dcacheUnit().misses(), step.dcacheUnit().misses());
}

/**
 * The hot trace body every core-level test executes: a straight ALU
 * run, two loads, a store, a taken back-edge. @p taken lets the
 * guard-flip tests betray the baked outcome.
 */
void
emitTraceBody(sim::Core &c, uint64_t pc, const void *p1, const void *p2,
              bool taken = true)
{
    sim::BlockEmitter e(c, pc);
    e.alu(6);
    e.loadPtr(p1, 1);
    e.alu(2);
    e.loadPtr(p2);
    e.storePtr(p1);
    e.branch(taken);
}

/**
 * The baked record stream matching emitTraceBody exactly — the same
 * sigs/pcOff/memIdx arrays jit::bakeSimStream derives at lowering time,
 * built by hand so the tests control stream identity and eligibility.
 */
struct BakedStream
{
    std::vector<uint64_t> sigs;
    std::vector<uint32_t> pcOff;
    std::vector<uint32_t> memIdx;
    uint64_t codePc = 0;
    uint64_t streamId = 0;

    sim::StreamView
    view() const
    {
        sim::StreamView v;
        v.sigs = sigs.data();
        v.pcOff = pcOff.data();
        v.memIdx = memIdx.data();
        v.nRecs = uint32_t(sigs.size());
        v.nMem = uint32_t(memIdx.size());
        v.codePc = codePc;
        v.streamId = streamId;
        v.eligible = true;
        return v;
    }
};

BakedStream
bakeTraceBody(uint64_t code_pc, uint64_t stream_id)
{
    using sim::InstClass;
    BakedStream b;
    b.codePc = code_pc;
    b.streamId = stream_id;
    auto rec = [&](uint64_t sig, uint32_t off, bool mem) {
        if (mem)
            b.memIdx.push_back(uint32_t(b.sigs.size()));
        b.sigs.push_back(sig);
        b.pcOff.push_back(off);
    };
    rec(sim::memoSigStraight(InstClass::IntAlu, 0, 6), 0, false);
    rec(sim::memoSigInst(InstClass::Load, 1, false), 24, true);
    rec(sim::memoSigStraight(InstClass::IntAlu, 0, 2), 28, false);
    rec(sim::memoSigInst(InstClass::Load, 0, false), 36, true);
    rec(sim::memoSigInst(InstClass::Store, 0, false), 40, true);
    rec(sim::memoSigInst(InstClass::Branch, 0, true), 44, false);
    return b;
}

constexpr uint64_t kTracePc = 0x400000;

TEST(SuperblockCore, SteadySweepReplayIsBitIdentical)
{
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));
    ASSERT_TRUE(sweep.superblockEnabled());
    ASSERT_FALSE(step.superblockEnabled());

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        for (int i = 0; i < 2000; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    sim::SuperblockStats sb = sweep.superblockStats();
    EXPECT_GE(sb.segmentsCached, 1u);
    EXPECT_GT(sb.hits, 1500u); // first pass records, the rest replay
    EXPECT_GT(sb.iterations, 1500u);
    EXPECT_GT(sb.replayedInstructions, 0u);
    EXPECT_GT(sb.hitRate(), 0.9);
    // The sweep absorbs the loop before block memoization ever records
    // it — the two accelerators split traffic, never double count.
    EXPECT_EQ(sweep.memoStats().hits, 0u);
    EXPECT_EQ(step.superblockStats().hits, 0u);
}

TEST(SuperblockCore, SuperblockOffLeavesTrafficToBlockMemo)
{
    sim::Core memoOnly(sweepParams(true, false));
    sim::Core step(sweepParams(false, false));
    ASSERT_FALSE(memoOnly.superblockEnabled());
    ASSERT_TRUE(memoOnly.memoEnabled());

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&memoOnly, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        for (int i = 0; i < 1000; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(memoOnly, step);
    EXPECT_EQ(memoOnly.superblockStats().hits, 0u);
    EXPECT_EQ(memoOnly.superblockStats().iterations, 0u);
    EXPECT_GT(memoOnly.memoStats().hits, 500u);
}

TEST(SuperblockCore, GuardFlipMidSweepDivergesExactly)
{
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        for (int i = 0; i < 800; ++i) {
            // Sporadic guard failures: the closing branch betrays its
            // baked outcome, so the deferred prefix must be landed by a
            // live walk and the flipped branch stepped for real. The
            // intervening replayed iterations keep the stream's
            // divergence budget reset, so replay always resumes.
            bool taken = (i % 97) != 96;
            emitTraceBody(*c, kTracePc, &obj1, &obj2, taken);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    sim::SuperblockStats sb = sweep.superblockStats();
    EXPECT_GT(sb.divergences, 0u);
    EXPECT_GT(sb.hits, 600u);
}

TEST(SuperblockCore, PersistentDivergenceTombstonesStream)
{
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        // Warm up: the sweep records and replays the steady stream.
        for (int i = 0; i < 100; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        // The guard now fails every iteration: consecutive divergences
        // exhaust the stream's divergence budget and tombstone it — a
        // replayed iteration would have reset the counter, but none
        // intervenes.
        for (int i = 0; i < 20; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2, false);
            c->memoBoundary();
        }
        // Steady again — but the tombstoned stream never re-arms, and
        // block memoization takes the traffic back.
        for (int i = 0; i < 300; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    sim::SuperblockStats sb = sweep.superblockStats();
    EXPECT_GT(sb.divergences, 0u);
    // Far fewer divergences than failing iterations: the tombstone
    // stopped the sweep from re-arming a hopeless stream.
    EXPECT_LT(sb.divergences, 20u);
    EXPECT_GT(sweep.memoStats().hits, 0u);
}

TEST(SuperblockCore, IcacheEvictionForcesReverify)
{
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        for (int round = 0; round < 4; ++round) {
            c->memoSetStream(bs.view());
            c->memoSessionBegin(8);
            for (int i = 0; i < 200; ++i) {
                emitTraceBody(*c, kTracePc, &obj1, &obj2);
                c->memoBoundary();
            }
            c->memoSessionEnd();
            // Walk 4x the icache capacity between sessions: the trace
            // footprint is fully evicted, the segment fingerprint no
            // longer verifies, and the next armed iteration must
            // re-record against cold-fetch reality instead of applying
            // stale LRU stamps.
            sim::BlockEmitter flush(*c, 0x10000000);
            flush.alu(4 * 32 * 1024 / 4);
        }
    }

    expectCoresIdentical(sweep, step);
    sim::SuperblockStats sb = sweep.superblockStats();
    EXPECT_GT(sb.invalidations, 0u);
    EXPECT_GT(sb.hits, 0u);
}

TEST(SuperblockCore, AddressRecyclingAfterFreeStaysExact)
{
    // Memory-op addresses are captured at defer time — the exact moment
    // stepping would translate them — and the dcache is walked live at
    // every replay. Releasing a mapping mid-session and letting a new
    // object recycle the simulated address must therefore stay exact
    // with the sweep armed the whole time.
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        int slotA = 0, slotB = 0;
        for (int round = 0; round < 40; ++round) {
            for (int i = 0; i < 50; ++i) {
                emitTraceBody(*c, kTracePc, &slotA, &slotB);
                c->memoBoundary();
            }
            // "GC frees slotA" — forget its mapping mid-session; the
            // next translate may hand the address to someone else.
            c->releaseDataAddr(&slotA);
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    EXPECT_GT(sweep.superblockStats().hits, 0u);
}

TEST(SuperblockCore, ResetStatsMidSweepStaysExact)
{
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSetStream(bs.view());
        c->memoSessionBegin(8);
        for (int i = 0; i < 300; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        // resetStats() with the sweep armed mid-iteration: the deferred
        // prefix is dropped, not materialized — its counters and the
        // machine state they would have touched are wiped either way,
        // so dropping is indistinguishable from landing-then-wiping.
        // The stepping twin resets at the same emission point.
        {
            sim::BlockEmitter e(*c, kTracePc);
            e.alu(6);
            e.loadPtr(&obj1, 1);
            c->resetStats();
            e.alu(2);
            e.loadPtr(&obj2);
            e.storePtr(&obj1);
            e.branch(true);
            c->memoBoundary();
        }
        for (int i = 0; i < 300; ++i) {
            emitTraceBody(*c, kTracePc, &obj1, &obj2);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    // Post-reset telemetry only — and the sweep re-armed and replayed
    // again after the flush.
    EXPECT_GT(sweep.superblockStats().hits, 0u);
}

TEST(SuperblockCore, ResetStatsReplayReproducesFirstRun)
{
    sim::Core core(sweepParams(true, true));
    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;

    auto burst = [&] {
        core.memoSetStream(bs.view());
        core.memoSessionBegin(8);
        for (int i = 0; i < 500; ++i) {
            emitTraceBody(core, kTracePc, &obj1, &obj2);
            core.memoBoundary();
        }
        core.memoSessionEnd();
    };

    burst();
    sim::PerfCounters first = core.totalCounters();
    ASSERT_GT(core.superblockStats().hits, 0u);

    core.resetStats();
    EXPECT_EQ(core.superblockStats().hits, 0u);
    EXPECT_EQ(core.superblockStats().segmentsCached, 0u);
    EXPECT_EQ(core.totalCounters().instructions, 0u);

    // Replaying the identical stream from reset state must reproduce
    // the first run bit for bit — a segment surviving the flush would
    // apply deltas recorded against pre-reset cache/predictor state.
    burst();
    sim::PerfCounters second = core.totalCounters();
    EXPECT_EQ(first.instructions, second.instructions);
    EXPECT_EQ(first.cyclesFp, second.cyclesFp);
    EXPECT_EQ(first.mispredicts, second.mispredicts);
    EXPECT_EQ(first.icacheMisses, second.icacheMisses);
    EXPECT_EQ(first.dcacheMisses, second.dcacheMisses);
}

TEST(SuperblockCore, RelowerChangesStreamIdentityAndInvalidates)
{
    // A tier promotion re-lowers the trace at the same codePc: the new
    // bake gets a fresh streamId, so every recorded segment indexes a
    // dead record stream and must be dropped, not replayed.
    sim::Core sweep(sweepParams(true, true));
    sim::Core step(sweepParams(false, false));

    BakedStream gen1 = bakeTraceBody(kTracePc, 1);
    BakedStream gen2 = bakeTraceBody(kTracePc, 2);
    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&sweep, &step}) {
        c->memoSessionBegin(8);
        for (const BakedStream *bs : {&gen1, &gen2}) {
            c->memoSetStream(bs->view());
            c->memoBoundary(); // a fresh stream arms at a delimiter
            for (int i = 0; i < 300; ++i) {
                emitTraceBody(*c, kTracePc, &obj1, &obj2);
                c->memoBoundary();
            }
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(sweep, step);
    sim::SuperblockStats sb = sweep.superblockStats();
    EXPECT_GT(sb.invalidations, 0u);
    EXPECT_GT(sb.hits, 400u); // both generations replay after re-record
}

TEST(SuperblockCore, EnvEscapeHatchDisablesSweep)
{
    setenv("XLVM_NO_SIM_SUPERBLOCK", "1", 1);
    sim::Core core(sweepParams(true, true));
    unsetenv("XLVM_NO_SIM_SUPERBLOCK");
    EXPECT_FALSE(core.superblockEnabled());
    EXPECT_TRUE(core.memoEnabled()); // the hatch is layer-local

    // With the hatch set at construction the sweep never arms, and the
    // block-memo layer serves the loop instead.
    BakedStream bs = bakeTraceBody(kTracePc, 1);
    int obj1 = 0, obj2 = 0;
    core.memoSetStream(bs.view());
    core.memoSessionBegin(8);
    for (int i = 0; i < 200; ++i) {
        emitTraceBody(core, kTracePc, &obj1, &obj2);
        core.memoBoundary();
    }
    core.memoSessionEnd();
    EXPECT_EQ(core.superblockStats().hits, 0u);
    EXPECT_GT(core.memoStats().hits, 0u);
}

// ---- end-to-end differentials ----------------------------------------

void
expectRunResultsIdentical(const driver::RunResult &a,
                          const driver::RunResult &b)
{
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    EXPECT_EQ(a.branchMissRate, b.branchMissRate);
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        EXPECT_EQ(a.phaseShares[p], b.phaseShares[p]) << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].instructions,
                  b.phaseCounters[p].instructions)
            << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].cyclesFp,
                  b.phaseCounters[p].cyclesFp)
            << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].mispredicts,
                  b.phaseCounters[p].mispredicts)
            << "phase " << p;
    }
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.traceEnters, b.traceEnters);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.gcAllocations, b.gcAllocations);
    EXPECT_EQ(a.gcFreedObjects, b.gcFreedObjects);
    EXPECT_EQ(a.icacheHits, b.icacheHits);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheHits, b.dcacheHits);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.work, b.work);
}

TEST(SuperblockDifferential, EndToEndWorkloadCountersIdentical)
{
    driver::RunOptions base;
    base.workload = "crypto_pyaes";
    base.scale = 60;
    base.vm = driver::VmKind::PyPyJit;
    base.loopThreshold = 60;

    driver::RunOptions sbOn = base;
    sbOn.simSuperblock = true;
    driver::RunOptions sbOff = base;
    sbOff.simSuperblock = false;

    driver::RunResult a = driver::runWorkload(sbOn);
    driver::RunResult b = driver::runWorkload(sbOff);

    expectRunResultsIdentical(a, b);
    EXPECT_GT(a.sbHits, 0u);
    EXPECT_GT(a.sbIterations, 0u);
    EXPECT_GE(a.sbSegmentsCached, 1u);
    EXPECT_EQ(b.sbHits, 0u);
    EXPECT_EQ(b.sbIterations, 0u);
    // With the sweep off, block memoization absorbs the traffic.
    EXPECT_GT(b.memoHits, a.memoHits);
}

TEST(SuperblockDifferential, GcHeavyWorkloadCountersIdentical)
{
    // go allocates heavily and keeps eligible hot traces: GC minors
    // strike mid-trace (impure GC annotations checkpoint the sweep),
    // frees recycle simulated data addresses under armed streams, and
    // guard-heavy board evaluation forces frequent divergences. All of
    // it must wash out exactly. (chaos is GC-heavy too, but its one
    // loop bakes an ineligible stream — call-class records — so it
    // never exercises the sweep.)
    driver::RunOptions base;
    base.workload = "go";
    base.vm = driver::VmKind::PyPyJit;
    base.loopThreshold = 60;
    base.maxInstructions = 50u * 1000 * 1000;

    driver::RunOptions sbOn = base;
    sbOn.simSuperblock = true;
    driver::RunOptions sbOff = base;
    sbOff.simSuperblock = false;

    driver::RunResult a = driver::runWorkload(sbOn);
    driver::RunResult b = driver::runWorkload(sbOff);

    expectRunResultsIdentical(a, b);
    EXPECT_GT(a.gcMinor, 0u);
    EXPECT_GT(a.sbHits, 0u);
    EXPECT_GT(a.sbDivergences, 0u);
}

TEST(SuperblockDifferential, CountersInvariantAcrossJobs)
{
    std::vector<driver::RunOptions> runs;
    for (const char *w : {"crypto_pyaes", "chaos"}) {
        driver::RunOptions o;
        o.workload = w;
        o.scale = 40;
        o.vm = driver::VmKind::PyPyJit;
        o.loopThreshold = 60;
        o.simSuperblock = true;
        runs.push_back(o);
    }

    std::vector<driver::RunResult> seq =
        driver::runWorkloadsParallel(runs, 1);
    std::vector<driver::RunResult> par =
        driver::runWorkloadsParallel(runs, 3);

    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(runs[i].workload);
        expectRunResultsIdentical(seq[i], par[i]);
        // Superblock telemetry is deterministic too: stream identities
        // are compared only for equality within a run's private core,
        // so the process-global bake counter's interleaving across jobs
        // cannot leak into hit/miss/divergence counts.
        EXPECT_EQ(seq[i].sbHits, par[i].sbHits);
        EXPECT_EQ(seq[i].sbMisses, par[i].sbMisses);
        EXPECT_EQ(seq[i].sbInvalidations, par[i].sbInvalidations);
        EXPECT_EQ(seq[i].sbDivergences, par[i].sbDivergences);
        EXPECT_EQ(seq[i].sbIterations, par[i].sbIterations);
    }
}

} // namespace
} // namespace xlvm
