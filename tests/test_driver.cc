#include <gtest/gtest.h>

#include "driver/runner.h"
#include "native/clbg_native.h"
#include "xlayer/phase.h"

namespace xlvm {
namespace driver {
namespace {

RunOptions
opts(const char *name, VmKind vm)
{
    RunOptions o;
    o.workload = name;
    o.vm = vm;
    o.scale = 60;
    o.loopThreshold = 25;
    o.bridgeThreshold = 12;
    o.maxInstructions = 200u * 1000 * 1000;
    return o;
}

TEST(Runner, ThreeVmsAgreeOnOutput)
{
    RunResult cpy = runWorkload(opts("crypto_pyaes", VmKind::CPythonLike));
    RunResult nojit = runWorkload(opts("crypto_pyaes", VmKind::PyPyNoJit));
    RunResult jit = runWorkload(opts("crypto_pyaes", VmKind::PyPyJit));
    EXPECT_TRUE(cpy.completed);
    EXPECT_EQ(cpy.output, nojit.output);
    EXPECT_EQ(cpy.output, jit.output);
    // Table I shape: translated interpreter slower than the C one; JIT
    // fastest; JIT mispredicts less.
    EXPECT_GT(nojit.seconds, cpy.seconds);
    EXPECT_LT(jit.seconds, cpy.seconds);
    EXPECT_LT(jit.branchMpki, cpy.branchMpki);
    EXPECT_GT(jit.ipc, nojit.ipc);
}

TEST(Runner, PhaseSharesSumToOne)
{
    RunResult r = runWorkload(opts("richards", VmKind::PyPyJit));
    double sum = 0;
    for (double s : r.phaseShares)
        sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(r.phaseShares[uint32_t(xlayer::Phase::Jit)], 0.0);
    EXPECT_GT(r.loopsCompiled, 0u);
}

TEST(Runner, InterpreterOnlyHasNoJitPhases)
{
    RunResult r = runWorkload(opts("richards", VmKind::CPythonLike));
    EXPECT_EQ(r.loopsCompiled, 0u);
    EXPECT_EQ(r.phaseShares[uint32_t(xlayer::Phase::Jit)], 0.0);
    EXPECT_EQ(r.phaseShares[uint32_t(xlayer::Phase::Tracing)], 0.0);
    EXPECT_GT(r.work, 0u);
}

TEST(Runner, IrAnnotationsPopulateCounts)
{
    RunOptions o = opts("crypto_pyaes", VmKind::PyPyJit);
    o.irAnnotations = true;
    RunResult r = runWorkload(o);
    EXPECT_GT(r.irNodesCompiled, 0u);
    ASSERT_EQ(r.irExecCounts.size(), r.irNodeMeta.size());
    uint64_t total = 0;
    for (uint64_t c : r.irExecCounts)
        total += c;
    EXPECT_GT(total, 0u);
}

TEST(Runner, AblationVirtualizeIncreasesGc)
{
    RunOptions full = opts("chaos", VmKind::PyPyJit);
    full.scale = 3000;
    RunOptions noVirt = full;
    noVirt.optVirtualize = false;
    RunResult a = runWorkload(full);
    RunResult b = runWorkload(noVirt);
    EXPECT_EQ(a.output, b.output);
    // Escape analysis removes boxing allocations; disabling it must
    // produce at least as many minor collections and more cycles.
    EXPECT_GE(b.gcMinor, a.gcMinor);
    EXPECT_GT(b.cycles, a.cycles);
}

TEST(Runner, RktRunnerAgreesAcrossVms)
{
    RunOptions o = opts("mandelbrot", VmKind::PycketJit);
    RunResult pycket = runRktWorkload(o);
    o.vm = VmKind::RacketLike;
    RunResult racket = runRktWorkload(o);
    EXPECT_TRUE(pycket.completed);
    EXPECT_EQ(pycket.output, racket.output);
    EXPECT_GT(pycket.loopsCompiled, 0u);
    EXPECT_EQ(racket.loopsCompiled, 0u);
}

TEST(Runner, PythonAndSchemeAgreeOnSharedKernels)
{
    // The same CLBG kernel in both languages computes the same result.
    RunResult py = runWorkload(opts("mandelbrot", VmKind::PyPyJit));
    RunResult rkt = runRktWorkload(opts("mandelbrot", VmKind::PycketJit));
    EXPECT_EQ(py.output, rkt.output);
}

TEST(Native, KernelsRunAndCost)
{
    double secs = native::runNative("mandelbrot");
    ASSERT_GT(secs, 0.0);
    EXPECT_FALSE(native::lastNativeOutput().empty());
    // Native must be much faster than the JIT VM on the same kernel.
    RunResult jit = runWorkload(opts("mandelbrot", VmKind::PyPyJit));
    jit.output.clear();
    EXPECT_LT(secs, jit.seconds);
    EXPECT_LT(native::runNative("no_such"), 0.0);
}

TEST(Native, MandelbrotOutputMatchesVm)
{
    native::runNative("mandelbrot");
    RunOptions o = opts("mandelbrot", VmKind::PyPyJit);
    o.scale = 0; // registry scale, same as native
    RunResult r = runWorkload(o);
    EXPECT_EQ(native::lastNativeOutput(), r.output);
}

} // namespace
} // namespace driver
} // namespace xlvm
