#include <gtest/gtest.h>

#include "minipy/compiler.h"
#include "minipy/interp.h"
#include "minipy/parser.h"
#include "vm/context.h"

namespace xlvm {
namespace minipy {
namespace {

/** Run a program and return its print() output. */
std::string
runSource(const std::string &src, bool jit, uint32_t threshold = 20,
          uint64_t max_instr = 0)
{
    vm::VmConfig cfg;
    cfg.jit.enableJit = jit;
    cfg.jit.loopThreshold = threshold;
    cfg.jit.bridgeThreshold = 10;
    cfg.maxInstructions = max_instr;
    vm::VmContext ctx(cfg);
    auto prog = compileSource(src, ctx.space);
    Interp interp(ctx, *prog);
    EXPECT_TRUE(interp.run());
    return interp.output();
}

/** Property: JIT on/off must agree. */
void
checkAgreement(const std::string &src, uint32_t threshold = 20)
{
    std::string off = runSource(src, false);
    std::string on = runSource(src, true, threshold);
    EXPECT_EQ(off, on) << src;
    EXPECT_FALSE(off.empty());
}

// ------------------------------------------------------------ lexer/parser

TEST(Lexer, BasicTokens)
{
    auto toks = tokenize("x = 1 + 2.5\n");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, Tok::Name);
    EXPECT_EQ(toks[1].kind, Tok::Assign);
    EXPECT_EQ(toks[2].kind, Tok::Int);
    EXPECT_EQ(toks[2].intValue, 1);
    EXPECT_EQ(toks[3].kind, Tok::Plus);
    EXPECT_EQ(toks[4].kind, Tok::Float);
    EXPECT_DOUBLE_EQ(toks[4].floatValue, 2.5);
}

TEST(Lexer, IndentDedent)
{
    auto toks = tokenize("if x:\n    y = 1\nz = 2\n");
    int indents = 0, dedents = 0;
    for (const auto &t : toks) {
        indents += t.kind == Tok::Indent;
        dedents += t.kind == Tok::Dedent;
    }
    EXPECT_EQ(indents, 1);
    EXPECT_EQ(dedents, 1);
}

TEST(Lexer, StringEscapes)
{
    auto toks = tokenize("s = \"a\\nb\"\n");
    EXPECT_EQ(toks[2].kind, Tok::Str);
    EXPECT_EQ(toks[2].text, "a\nb");
}

TEST(Lexer, NotInAndIsNot)
{
    auto toks = tokenize("a not in b\nc is not d\n");
    bool notin = false, isnot = false;
    for (const auto &t : toks) {
        notin |= t.kind == Tok::KwNotIn;
        isnot |= t.kind == Tok::KwIsNot;
    }
    EXPECT_TRUE(notin);
    EXPECT_TRUE(isnot);
}

TEST(Parser, FunctionAndLoop)
{
    Module m = parse("def f(a, b=2):\n"
                     "    return a + b\n"
                     "x = f(1)\n"
                     "while x < 10:\n"
                     "    x = x + 1\n");
    ASSERT_EQ(m.body.size(), 3u);
    EXPECT_EQ(m.body[0]->kind, StmtKind::Def);
    EXPECT_EQ(m.body[0]->params.size(), 2u);
    EXPECT_EQ(m.body[0]->defaults.size(), 1u);
    EXPECT_EQ(m.body[2]->kind, StmtKind::While);
}

TEST(Parser, ClassWithMethods)
{
    Module m = parse("class A(B):\n"
                     "    def __init__(self):\n"
                     "        self.x = 1\n"
                     "    def get(self):\n"
                     "        return self.x\n");
    ASSERT_EQ(m.body.size(), 1u);
    EXPECT_EQ(m.body[0]->kind, StmtKind::ClassDef);
    EXPECT_EQ(m.body[0]->methods.size(), 2u);
    EXPECT_EQ(m.body[0]->globalNames[0], "B");
}

// ------------------------------------------------------------ interp basics

TEST(Interp, ArithmeticAndPrint)
{
    EXPECT_EQ(runSource("print(1 + 2 * 3)\n", false), "7\n");
    EXPECT_EQ(runSource("print(7 // 2, 7 % 2)\n", false), "3 1\n");
    EXPECT_EQ(runSource("print(-7 // 2, -7 % 2)\n", false), "-4 1\n");
    EXPECT_EQ(runSource("print(1.5 * 2)\n", false), "3\n");
    EXPECT_EQ(runSource("print(2 ** 10)\n", false), "1024\n");
    EXPECT_EQ(runSource("print(7 / 2)\n", false), "3.5\n");
}

TEST(Interp, BigIntPromotion)
{
    EXPECT_EQ(runSource("print(2 ** 100)\n", false),
              "1267650600228229401496703205376\n");
    EXPECT_EQ(
        runSource("x = 10 ** 30\nprint(x // 10 ** 10)\n", false),
        "100000000000000000000\n");
}

TEST(Interp, StringsAndMethods)
{
    EXPECT_EQ(runSource("print(\"ab\" + \"cd\")\n", false), "abcd\n");
    EXPECT_EQ(runSource("print(\",\".join([\"a\", \"b\"]))\n", false),
              "a,b\n");
    EXPECT_EQ(runSource("print(\"a-b-c\".split(\"-\"))\n", false),
              "['a', 'b', 'c']\n");
    EXPECT_EQ(runSource("print(\"hello\".upper())\n", false), "HELLO\n");
    EXPECT_EQ(runSource("print(\"hello\"[1])\n", false), "e\n");
    EXPECT_EQ(runSource("print(\"hello\"[1:3])\n", false), "el\n");
    EXPECT_EQ(runSource("print(len(\"hello\"))\n", false), "5\n");
    EXPECT_EQ(runSource("print(\"ell\" in \"hello\")\n", false),
              "True\n");
}

TEST(Interp, ListsAndDictsAndSets)
{
    EXPECT_EQ(runSource("x = [1, 2]\nx.append(3)\nprint(x)\n", false),
              "[1, 2, 3]\n");
    EXPECT_EQ(runSource("d = {\"a\": 1}\nd[\"b\"] = 2\n"
                        "print(d[\"a\"] + d[\"b\"])\n",
                        false),
              "3\n");
    EXPECT_EQ(runSource("s = {1, 2, 3}\nprint(2 in s, 9 in s)\n", false),
              "True False\n");
    EXPECT_EQ(runSource("x = [3, 1, 2]\nx.sort()\nprint(x)\n", false),
              "[1, 2, 3]\n");
    EXPECT_EQ(runSource("t = (1, 2, 3)\na, b, c = t\nprint(a + b + c)\n",
                        false),
              "6\n");
}

TEST(Interp, ControlFlow)
{
    const char *src = "total = 0\n"
                      "for i in range(10):\n"
                      "    if i % 2 == 0:\n"
                      "        total += i\n"
                      "    elif i == 7:\n"
                      "        total += 100\n"
                      "print(total)\n";
    EXPECT_EQ(runSource(src, false), "120\n");
}

TEST(Interp, WhileBreakContinue)
{
    const char *src = "i = 0\ns = 0\n"
                      "while True:\n"
                      "    i += 1\n"
                      "    if i > 10:\n"
                      "        break\n"
                      "    if i % 2 == 0:\n"
                      "        continue\n"
                      "    s += i\n"
                      "print(s)\n";
    EXPECT_EQ(runSource(src, false), "25\n");
}

TEST(Interp, FunctionsAndRecursion)
{
    const char *src = "def fib(n):\n"
                      "    if n < 2:\n"
                      "        return n\n"
                      "    return fib(n - 1) + fib(n - 2)\n"
                      "print(fib(15))\n";
    EXPECT_EQ(runSource(src, false), "610\n");
}

TEST(Interp, DefaultsAndGlobals)
{
    const char *src = "counter = 0\n"
                      "def bump(by=2):\n"
                      "    global counter\n"
                      "    counter += by\n"
                      "bump()\nbump(5)\nprint(counter)\n";
    EXPECT_EQ(runSource(src, false), "7\n");
}

TEST(Interp, ClassesAndAttributes)
{
    const char *src = "class Point:\n"
                      "    def __init__(self, x, y):\n"
                      "        self.x = x\n"
                      "        self.y = y\n"
                      "    def dist2(self):\n"
                      "        return self.x * self.x + self.y * self.y\n"
                      "p = Point(3, 4)\n"
                      "print(p.dist2())\n"
                      "p.x = 6\n"
                      "print(p.dist2())\n";
    EXPECT_EQ(runSource(src, false), "25\n52\n");
}

TEST(Interp, Inheritance)
{
    const char *src = "class A:\n"
                      "    def who(self):\n"
                      "        return 1\n"
                      "    def common(self):\n"
                      "        return 10\n"
                      "class B(A):\n"
                      "    def who(self):\n"
                      "        return 2\n"
                      "b = B()\n"
                      "print(b.who() + b.common())\n";
    EXPECT_EQ(runSource(src, false), "12\n");
}

TEST(Interp, BoolOpsShortCircuit)
{
    EXPECT_EQ(runSource("print(1 < 2 and 3 < 4)\n", false), "True\n");
    EXPECT_EQ(runSource("print(0 or 5)\n", false), "5\n");
    EXPECT_EQ(runSource("print(not (1 == 1))\n", false), "False\n");
}

TEST(Interp, SliceOperations)
{
    EXPECT_EQ(runSource("x = [1,2,3,4,5]\nprint(x[1:3])\n", false),
              "[2, 3]\n");
    EXPECT_EQ(runSource("x = [1,2,3,4,5]\nprint(x[:2], x[3:])\n", false),
              "[1, 2] [4, 5]\n");
    EXPECT_EQ(runSource("x = [1,2,3]\nx[1:2] = [7,8]\nprint(x)\n", false),
              "[1, 7, 8, 3]\n");
}

TEST(Interp, AugAssignSubscript)
{
    EXPECT_EQ(runSource("x = [1, 2]\nx[0] += 10\nprint(x)\n", false),
              "[11, 2]\n");
    const char *attr = "class C:\n"
                       "    def __init__(self):\n"
                       "        self.n = 1\n"
                       "c = C()\nc.n += 41\nprint(c.n)\n";
    EXPECT_EQ(runSource(attr, false), "42\n");
}

// ------------------------------------------------------------ JIT harmony

TEST(Jit, IntLoopAgreement)
{
    checkAgreement("i = 0\ntotal = 0\n"
                   "while i < 500:\n"
                   "    total = total + i\n"
                   "    i = i + 1\n"
                   "print(total)\n");
}

TEST(Jit, FloatLoopAgreement)
{
    checkAgreement("x = 0.0\ni = 0\n"
                   "while i < 400:\n"
                   "    x = x + 1.5\n"
                   "    i = i + 1\n"
                   "print(x)\n");
}

TEST(Jit, ForRangeAgreement)
{
    checkAgreement("t = 0\n"
                   "for i in range(300):\n"
                   "    t += i * 2\n"
                   "print(t)\n");
}

TEST(Jit, ListLoopAgreement)
{
    checkAgreement("xs = []\n"
                   "for i in range(200):\n"
                   "    xs.append(i)\n"
                   "t = 0\n"
                   "for x in xs:\n"
                   "    t += x\n"
                   "print(t, len(xs))\n");
}

TEST(Jit, DictLoopAgreement)
{
    checkAgreement("d = {}\n"
                   "for i in range(150):\n"
                   "    d[i % 17] = i\n"
                   "t = 0\n"
                   "for k in d:\n"
                   "    t += d[k]\n"
                   "print(t)\n");
}

TEST(Jit, AttributeLoopAgreement)
{
    checkAgreement("class Acc:\n"
                   "    def __init__(self):\n"
                   "        self.v = 0\n"
                   "    def add(self, x):\n"
                   "        self.v = self.v + x\n"
                   "a = Acc()\n"
                   "for i in range(300):\n"
                   "    a.add(i)\n"
                   "print(a.v)\n");
}

TEST(Jit, FunctionInliningAgreement)
{
    checkAgreement("def sq(x):\n"
                   "    return x * x\n"
                   "t = 0\n"
                   "for i in range(250):\n"
                   "    t += sq(i)\n"
                   "print(t)\n");
}

TEST(Jit, BranchyLoopBridges)
{
    // Alternating branch directions force guard failures and bridges.
    checkAgreement("t = 0\n"
                   "for i in range(600):\n"
                   "    if i % 3 == 0:\n"
                   "        t += 1\n"
                   "    else:\n"
                   "        t += 2\n"
                   "print(t)\n",
                   15);
}

TEST(Jit, NestedLoopsCallAssembler)
{
    checkAgreement("t = 0\n"
                   "i = 0\n"
                   "while i < 40:\n"
                   "    j = 0\n"
                   "    while j < 40:\n"
                   "        t += j\n"
                   "        j += 1\n"
                   "    i += 1\n"
                   "print(t)\n",
                   10);
}

TEST(Jit, StringBuildingAgreement)
{
    checkAgreement("parts = []\n"
                   "for i in range(120):\n"
                   "    parts.append(str(i))\n"
                   "s = \",\".join(parts)\n"
                   "print(len(s))\n");
}

TEST(Jit, OverflowToBigIntAgreement)
{
    checkAgreement("x = 1\n"
                   "for i in range(80):\n"
                   "    x = x * 3\n"
                   "print(x)\n");
}

TEST(Jit, CompilesAndExecutesTraces)
{
    vm::VmConfig cfg;
    cfg.jit.loopThreshold = 20;
    vm::VmContext ctx(cfg);
    auto prog = compileSource("t = 0\n"
                              "for i in range(500):\n"
                              "    t += i\n"
                              "print(t)\n",
                              ctx.space);
    Interp interp(ctx, *prog);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.output(), "124750\n");
    EXPECT_GE(interp.tracesCompleted, 1u);
    EXPECT_GE(ctx.registry.size(), 1u);
    EXPECT_GT(ctx.executor.iterationCount(), 100u);
    // Phase accounting: some cycles in the JIT phase.
    EXPECT_GT(ctx.phases.phaseCounters(xlayer::Phase::Jit).cycles(), 0.0);
    EXPECT_GT(ctx.phases.phaseCounters(xlayer::Phase::Tracing).cycles(),
              0.0);
}

TEST(Jit, JitIsFasterOnHotLoops)
{
    const char *src = "t = 0\n"
                      "for i in range(3000):\n"
                      "    t += i * 2 + 1\n"
                      "print(t)\n";
    vm::VmConfig off;
    off.jit.enableJit = false;
    vm::VmContext c1(off);
    auto p1 = compileSource(src, c1.space);
    Interp i1(c1, *p1);
    ASSERT_TRUE(i1.run());

    vm::VmConfig on;
    on.jit.loopThreshold = 20;
    vm::VmContext c2(on);
    auto p2 = compileSource(src, c2.space);
    Interp i2(c2, *p2);
    ASSERT_TRUE(i2.run());

    EXPECT_EQ(i1.output(), i2.output());
    EXPECT_LT(c2.totalCyclesForTest(), c1.totalCyclesForTest());
}

TEST(Jit, WorkRateCountsDispatches)
{
    vm::VmConfig cfg;
    cfg.jit.loopThreshold = 20;
    vm::VmContext ctx(cfg);
    auto prog = compileSource("t = 0\n"
                              "for i in range(400):\n"
                              "    t += 1\n",
                              ctx.space);
    Interp interp(ctx, *prog);
    ASSERT_TRUE(interp.run());
    ctx.work.finalize();
    // Work (bytecodes) executed on either side of the JIT boundary is
    // counted uniformly through the dispatch annotation.
    EXPECT_GT(ctx.work.totalWork(), 1000u);
}

TEST(Jit, BudgetStopsExecution)
{
    vm::VmConfig cfg;
    cfg.maxInstructions = 20000;
    vm::VmContext ctx(cfg);
    auto prog = compileSource("i = 0\n"
                              "while i < 100000000:\n"
                              "    i += 1\n",
                              ctx.space);
    Interp interp(ctx, *prog);
    EXPECT_FALSE(interp.run());
    EXPECT_GE(ctx.core.totalInstructions(), 20000u);
}

TEST(Jit, GcRunsDuringJitLoops)
{
    vm::VmConfig cfg;
    cfg.jit.loopThreshold = 15;
    cfg.heap.nurseryBytes = 16 * 1024;
    vm::VmContext ctx(cfg);
    auto prog = compileSource("t = 0\n"
                              "for i in range(2000):\n"
                              "    xs = [i, i + 1, i + 2]\n"
                              "    t += xs[1]\n"
                              "print(t)\n",
                              ctx.space);
    Interp interp(ctx, *prog);
    ASSERT_TRUE(interp.run());
    EXPECT_EQ(interp.output(), "2001000\n");
    EXPECT_GT(ctx.heap.stats().minorCollections, 0u);
}

} // namespace
} // namespace minipy
} // namespace xlvm
