#include <gtest/gtest.h>

#include "jit/opt.h"
#include "jit/recorder.h"

namespace xlvm {
namespace jit {
namespace {

Snapshot
snapWith(std::vector<int32_t> stack)
{
    Snapshot s;
    FrameSnapshot f;
    f.stack = std::move(stack);
    s.frames.push_back(f);
    return s;
}

OptParams
defaultParams()
{
    OptParams p;
    p.classOf = [](void *) { return 0u; };
    return p;
}

int
countOps(const Trace &t, IrOp op)
{
    int n = 0;
    for (const ResOp &r : t.ops) {
        if (r.op == op)
            ++n;
    }
    return n;
}

/**
 * Build the classic boxed-integer loop body the meta-tracer records for
 * "i = i + 1" over W_Int objects: guard_class, getfield, add+ovf guard,
 * new boxed result, setfield, jump with the fresh box.
 */
Trace
boxedIncrementTrace()
{
    Recorder rec(nullptr, 0, false);
    int frameDummy;
    int32_t box = rec.addInputRef(&frameDummy);
    [[maybe_unused]] bool ok =
        rec.atMergePoint(0, [&] { return snapWith({box}); });
    rec.guardClass(box, /*W_Int=*/7);
    int32_t val = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, box,
                                kNoArg, kNoArg, /*field=*/0);
    int32_t sum = rec.emit(IrOp::IntAddOvf, val, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t res = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg, 7);
    rec.emit(IrOp::SetfieldGc, res, sum, kNoArg, 0);
    // Next bytecode: its snapshot sees the fresh box on the stack, which
    // is how virtuals end up described in resume data.
    ok = rec.atMergePoint(1, [&] { return snapWith({res}); });
    int32_t cmp = rec.emit(IrOp::IntLt, sum, rec.constInt(1000));
    rec.guardTrue(cmp);
    rec.closeLoop({res});
    return rec.take();
}

TEST(Opt, AllocationSinkingRemovesBoxingInLoopBody)
{
    Trace in = boxedIncrementTrace();
    OptStats stats;
    Trace out = optimize(in, defaultParams(), &stats);

    // The New survives only at the loop edge (forced for the jump arg);
    // the interior setfield went into the virtual.
    EXPECT_EQ(countOps(in, IrOp::NewWithVtable), 1);
    EXPECT_EQ(countOps(out, IrOp::NewWithVtable), 1); // forced at jump
    EXPECT_GE(stats.removedAllocations, 1u);
    EXPECT_GE(stats.forcedAllocations, 1u);
    // Ops did not grow.
    EXPECT_LE(out.ops.size(), in.ops.size());
}

TEST(Opt, FullyVirtualWhenNotLoopCarried)
{
    // Same body but the jump carries the original input, so the boxed
    // temporary is never forced: allocation disappears entirely.
    Recorder rec(nullptr, 0, false);
    int frameDummy;
    int32_t box = rec.addInputRef(&frameDummy);
    [[maybe_unused]] bool ok =
        rec.atMergePoint(0, [&] { return snapWith({box}); });
    rec.guardClass(box, 7);
    int32_t val = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, box,
                                kNoArg, kNoArg, 0);
    int32_t res = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg, 7);
    rec.emit(IrOp::SetfieldGc, res, val, kNoArg, 0);
    // Read it back: must be forwarded from the virtual.
    int32_t back = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, res,
                                 kNoArg, kNoArg, 0);
    int32_t cmp = rec.emit(IrOp::IntLt, back, rec.constInt(10));
    rec.guardTrue(cmp);
    rec.closeLoop({box});
    Trace in = rec.take();

    OptStats stats;
    Trace out = optimize(in, defaultParams(), &stats);
    EXPECT_EQ(countOps(out, IrOp::NewWithVtable), 0);
    EXPECT_EQ(countOps(out, IrOp::SetfieldGc), 0);
    EXPECT_EQ(stats.forcedAllocations, 0u);
    // Both getfields gone: one on input was real, one was on the virtual.
    EXPECT_EQ(countOps(out, IrOp::GetfieldGc), 1);
}

TEST(Opt, VirtualDescribedInSnapshotForDeopt)
{
    Trace in = boxedIncrementTrace();
    Trace out = optimize(in, defaultParams(), nullptr);

    // The guard following the New (guard_true on the comparison) must
    // describe the virtual in its snapshot rather than forcing it.
    bool sawVirtualRef = false;
    for (const Snapshot &s : out.snapshots) {
        for (const FrameSnapshot &f : s.frames) {
            for (int32_t r : f.stack)
                sawVirtualRef |= isVirtualRef(r);
            for (int32_t r : f.locals)
                sawVirtualRef |= isVirtualRef(r);
        }
    }
    EXPECT_TRUE(sawVirtualRef);
    ASSERT_FALSE(out.virtuals.empty());
    EXPECT_EQ(out.virtuals[0].typeId, 7u);
}

TEST(Opt, HeapCacheForwardsRepeatedGetfield)
{
    Recorder rec(nullptr, 0, false);
    int frameDummy;
    int32_t obj = rec.addInputRef(&frameDummy);
    [[maybe_unused]] bool ok =
        rec.atMergePoint(0, [&] { return snapWith({obj}); });
    int32_t a = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, obj, kNoArg,
                              kNoArg, 3);
    int32_t b = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, obj, kNoArg,
                              kNoArg, 3);
    int32_t s = rec.emit(IrOp::IntAdd, a, b);
    int32_t cmp = rec.emit(IrOp::IntLt, s, rec.constInt(100));
    rec.guardTrue(cmp);
    rec.closeLoop({obj});
    Trace in = rec.take();

    OptStats stats;
    Trace out = optimize(in, defaultParams(), &stats);
    EXPECT_EQ(countOps(in, IrOp::GetfieldGc), 2);
    EXPECT_EQ(countOps(out, IrOp::GetfieldGc), 1);
    EXPECT_GE(stats.forwardedLoads, 1u);
}

TEST(Opt, CallInvalidatesHeapCache)
{
    Recorder rec(nullptr, 0, false);
    int frameDummy;
    int32_t obj = rec.addInputRef(&frameDummy);
    [[maybe_unused]] bool ok =
        rec.atMergePoint(0, [&] { return snapWith({obj}); });
    rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, obj, kNoArg, kNoArg, 3);
    rec.emitTyped(IrOp::Call, BoxType::Int, obj, kNoArg, kNoArg, 11);
    rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, obj, kNoArg, kNoArg, 3);
    rec.closeLoop({obj});
    Trace in = rec.take();

    Trace out = optimize(in, defaultParams(), nullptr);
    EXPECT_EQ(countOps(out, IrOp::GetfieldGc), 2); // not forwarded
}

TEST(Opt, SetfieldFeedsHeapCache)
{
    Recorder rec(nullptr, 0, false);
    int frameDummy;
    int32_t obj = rec.addInputRef(&frameDummy);
    [[maybe_unused]] bool ok =
        rec.atMergePoint(0, [&] { return snapWith({obj}); });
    int32_t v = rec.constInt(9);
    rec.emit(IrOp::SetfieldGc, obj, v, kNoArg, 2);
    int32_t r = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, obj, kNoArg,
                              kNoArg, 2);
    int32_t cmp = rec.emit(IrOp::IntLt, r, rec.constInt(100));
    rec.guardTrue(cmp);
    rec.closeLoop({obj});
    Trace in = rec.take();

    Trace out = optimize(in, defaultParams(), nullptr);
    // getfield forwarded to the stored constant; the comparison folded;
    // the guard disappeared.
    EXPECT_EQ(countOps(out, IrOp::GetfieldGc), 0);
    EXPECT_EQ(countOps(out, IrOp::GuardTrue), 0);
}

TEST(Opt, ConstantFoldingAcrossOps)
{
    // Recorder-level folding is bypassed by building ops manually.
    Trace in;
    int32_t c2 = in.addConst(RtVal::fromInt(2));
    int32_t c3 = in.addConst(RtVal::fromInt(3));
    ResOp label;
    label.op = IrOp::Label;
    in.ops.push_back(label);
    ResOp add;
    add.op = IrOp::IntAdd;
    add.args[0] = c2;
    add.args[1] = c3;
    add.result = in.newBox(BoxType::Int);
    in.ops.push_back(add);
    ResOp mul;
    mul.op = IrOp::IntMul;
    mul.args[0] = add.result;
    mul.args[1] = c2;
    mul.result = in.newBox(BoxType::Int);
    in.ops.push_back(mul);
    Snapshot s;
    s.frames.push_back(FrameSnapshot{nullptr, 0, {}, {mul.result}});
    in.snapshots.push_back(s);
    ResOp jump;
    jump.op = IrOp::Jump;
    jump.snapshotIdx = 0;
    in.ops.push_back(jump);

    OptStats stats;
    Trace out = optimize(in, defaultParams(), &stats);
    EXPECT_EQ(countOps(out, IrOp::IntAdd), 0);
    EXPECT_EQ(countOps(out, IrOp::IntMul), 0);
    EXPECT_EQ(stats.foldedOps, 2u);
    // Jump arg folded to constant 10.
    const Snapshot &js = out.snapshots.back();
    ASSERT_EQ(js.frames[0].stack.size(), 1u);
    EXPECT_TRUE(isConstRef(js.frames[0].stack[0]));
    EXPECT_EQ(out.constAt(js.frames[0].stack[0]).i, 10);
}

TEST(Opt, RedundantGuardClassElidedAcrossTrace)
{
    Trace in;
    ResOp label;
    label.op = IrOp::Label;
    in.ops.push_back(label);
    int32_t box = in.newBox(BoxType::Ref);
    in.numInputs = 1;
    Snapshot s;
    s.frames.push_back(FrameSnapshot{nullptr, 0, {}, {box}});
    in.snapshots.push_back(s);
    for (int i = 0; i < 3; ++i) {
        ResOp g;
        g.op = IrOp::GuardClass;
        g.args[0] = box;
        g.aux = 5;
        g.snapshotIdx = 0;
        in.ops.push_back(g);
    }
    ResOp jump;
    jump.op = IrOp::Jump;
    jump.snapshotIdx = 0;
    in.ops.push_back(jump);

    OptStats stats;
    Trace out = optimize(in, defaultParams(), &stats);
    EXPECT_EQ(countOps(out, IrOp::GuardClass), 1);
    EXPECT_EQ(stats.elidedGuards, 2u);
}

TEST(Opt, DisabledPassesLeaveTraceAlone)
{
    Trace in = boxedIncrementTrace();
    OptParams p = defaultParams();
    p.foldConstants = false;
    p.elideGuards = false;
    p.heapCache = false;
    p.virtualize = false;
    OptStats stats;
    Trace out = optimize(in, p, &stats);
    EXPECT_EQ(countOps(out, IrOp::NewWithVtable),
              countOps(in, IrOp::NewWithVtable));
    EXPECT_EQ(countOps(out, IrOp::GetfieldGc),
              countOps(in, IrOp::GetfieldGc));
    EXPECT_EQ(stats.removedAllocations, 0u);
}

TEST(Opt, VirtualRefEncodingHelpers)
{
    int32_t v = makeVirtualRef(3);
    EXPECT_TRUE(isVirtualRef(v));
    EXPECT_FALSE(isConstRef(v));
    EXPECT_EQ(virtualIndex(v), 3);
    EXPECT_FALSE(isVirtualRef(makeConstRef(0)));
    EXPECT_FALSE(isVirtualRef(0));
    EXPECT_FALSE(isVirtualRef(kNoArg));
}

} // namespace
} // namespace jit
} // namespace xlvm
