/**
 * @file
 * Multi-tier JIT tests (tier policy, promotion, per-tier accounting).
 *
 * The tiering layer's contract has two halves. Behaviorally, Tier1 mode
 * compiles raw recorded traces without the optimizer, Multi mode
 * additionally promotes a baseline trace to the optimized tier once its
 * execution count crosses tier2Threshold, and Tier2 (the default)
 * reproduces the pre-tiering pipeline exactly. Mechanically, promotion
 * must be safe against everything that can race it: a guard-side bridge
 * getting hot while the promotion is pending, sim-layer memo records
 * tombstoned by the arena moving on, and parallel sweeps interleaving
 * runs. The tests here pin both halves, plus the XLVM_TIER_MODE env
 * hatch and the degenerate threshold==0 configurations.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "xlayer/annot.h"

namespace xlvm {
namespace {

driver::RunOptions
baseOptions(const char *workload, int64_t scale)
{
    driver::RunOptions o;
    o.workload = workload;
    o.scale = scale;
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 60;
    o.bridgeThreshold = 20;
    o.tier1Threshold = 30;
    o.tier2Threshold = 40;
    return o;
}

void
expectTierCountersIdentical(const driver::RunResult &a,
                            const driver::RunResult &b)
{
    EXPECT_EQ(a.tier1Compiles, b.tier1Compiles);
    EXPECT_EQ(a.tier2Compiles, b.tier2Compiles);
    EXPECT_EQ(a.tierPromotions, b.tierPromotions);
    EXPECT_EQ(a.tierUps, b.tierUps);
    EXPECT_EQ(a.tier1CodeBytes, b.tier1CodeBytes);
    EXPECT_EQ(a.tier2CodeBytes, b.tier2CodeBytes);
    EXPECT_EQ(a.tier1RetiredBytes, b.tier1RetiredBytes);
    EXPECT_EQ(a.tier1CompileInsts, b.tier1CompileInsts);
    EXPECT_EQ(a.tier2CompileInsts, b.tier2CompileInsts);
    EXPECT_EQ(a.tier1CyclesFp, b.tier1CyclesFp);
    EXPECT_EQ(a.tier2CyclesFp, b.tier2CyclesFp);
}

void
expectModeledCountersIdentical(const driver::RunResult &a,
                               const driver::RunResult &b)
{
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.traceEnters, b.traceEnters);
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.work, b.work);
    expectTierCountersIdentical(a, b);
}

// ---- mode semantics ---------------------------------------------------

TEST(TierModes, DefaultTier2HasNoTieringActivity)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 60);
    // o.tierMode defaults to Tier2.
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.loopsCompiled, 0u);
    EXPECT_EQ(r.tier1Compiles, 0u);
    EXPECT_EQ(r.tierPromotions, 0u);
    EXPECT_EQ(r.tierUps, 0u);
    EXPECT_EQ(r.tier1CodeBytes, 0u);
    EXPECT_EQ(r.tier1CyclesFp, 0u);
    // Every registered trace (loops + bridges) compiled at tier 2.
    EXPECT_EQ(r.tier2Compiles, r.loopsCompiled + r.bridgesCompiled);
    EXPECT_GT(r.tier2CyclesFp, 0u);
}

TEST(TierModes, Tier1CompilesBaselineOnly)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 60);
    o.tierMode = vm::TierMode::Tier1;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.tier1Compiles, 0u);
    EXPECT_EQ(r.tier1Compiles, r.loopsCompiled + r.bridgesCompiled);
    EXPECT_EQ(r.tier2Compiles, 0u);
    EXPECT_EQ(r.tierPromotions, 0u);
    EXPECT_GT(r.tier1CyclesFp, 0u);
    EXPECT_EQ(r.tier2CyclesFp, 0u);
    EXPECT_GT(r.tier1CodeBytes, 0u);
    EXPECT_EQ(r.tier1RetiredBytes, 0u);

    // Baseline compilation changes modeled costs, never semantics.
    driver::RunOptions t2 = baseOptions("crypto_pyaes", 60);
    driver::RunResult r2 = driver::runWorkload(t2);
    EXPECT_EQ(r.output, r2.output);
}

TEST(TierModes, MultiPromotesHotTraces)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 60);
    o.tierMode = vm::TierMode::Multi;
    o.traceBufferEvents = 1 << 16;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);

    EXPECT_GT(r.tier1Compiles, 0u);
    EXPECT_GT(r.tierPromotions, 0u);
    // In Multi mode the only route to tier 2 is promotion.
    EXPECT_EQ(r.tier2Compiles, r.tierPromotions);
    // The annotation stream (event profiler) sees the same tier-ups the
    // backend performed.
    EXPECT_EQ(r.tierUps, r.tierPromotions);
    // Promotion retires the baseline body from the resident footprint.
    EXPECT_GT(r.tier1RetiredBytes, 0u);
    // Hot code ends up running optimized.
    EXPECT_GT(r.tier2CyclesFp, 0u);
    // Promotion charges the optimizer's modeled compile cost.
    EXPECT_GT(r.tier2CompileInsts, 0u);
    EXPECT_GT(r.tier1CompileInsts, 0u);

    // kTierUp events flow through the streaming tracer too (exact only
    // when the ring did not wrap over any of them).
    uint64_t tierUpEvents = 0;
    for (const xlayer::TraceRecord &e : r.trace.events) {
        if (e.tag == xlayer::kTierUp)
            ++tierUpEvents;
    }
    if (r.trace.droppedEvents == 0)
        EXPECT_EQ(tierUpEvents, r.tierPromotions);
    else
        EXPECT_GT(tierUpEvents, 0u);
}

TEST(TierModes, OffDisablesJit)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 40);
    o.tierMode = vm::TierMode::Off;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.loopsCompiled, 0u);
    EXPECT_EQ(r.traceEnters, 0u);
    EXPECT_EQ(r.tier1Compiles + r.tier2Compiles, 0u);
}

// ---- degenerate thresholds -------------------------------------------

TEST(TierThresholds, ZeroTier1ThresholdTracesOnFirstVisit)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 40);
    o.tierMode = vm::TierMode::Tier1;
    o.tier1Threshold = 0;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.tier1Compiles, 0u);
    EXPECT_EQ(r.tierPromotions, 0u);

    driver::RunOptions t2 = baseOptions("crypto_pyaes", 40);
    driver::RunResult r2 = driver::runWorkload(t2);
    EXPECT_EQ(r.output, r2.output);
}

TEST(TierThresholds, ZeroTier2ThresholdPromotesImmediately)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 40);
    o.tierMode = vm::TierMode::Multi;
    o.tier2Threshold = 0;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.tierPromotions, 0u);
    // With an always-satisfied promotion threshold, every baseline
    // trace that takes a single backward transfer tiers up.
    EXPECT_LE(r.tierPromotions, r.tier1Compiles);
    EXPECT_EQ(r.tierUps, r.tierPromotions);
}

// ---- promotion vs. guard-side bridges ---------------------------------

TEST(TierRace, PromotionCoexistsWithHotGuardBridges)
{
    // richards deopts enough that guards get hot while promotions are
    // in flight: the executor suppresses starting a bridge on a trace
    // with a pending promotion (the promotion wins; bridge counters
    // re-arm), and promotion detaches previously attached baseline
    // bridges. The run must stay deterministic and the accounting
    // coherent.
    driver::RunOptions o = baseOptions("richards", 0);
    o.tierMode = vm::TierMode::Multi;
    driver::RunResult a = driver::runWorkload(o);
    driver::RunResult b = driver::runWorkload(o);
    ASSERT_TRUE(a.completed);

    EXPECT_GT(a.tierPromotions, 0u);
    EXPECT_GT(a.bridgesCompiled, 0u);
    EXPECT_EQ(a.tier2Compiles, a.tierPromotions);
    EXPECT_EQ(a.tier1Compiles, a.loopsCompiled + a.bridgesCompiled);

    expectModeledCountersIdentical(a, b);
}

// ---- promotion vs. sim-layer memoization ------------------------------

TEST(TierMemo, PromotionAfterTombstonedMemoRecordsStaysExact)
{
    // Promotion re-lowers a trace into fresh code-arena space; the memo
    // entries recorded against the baseline body are never re-keyed —
    // they are simply abandoned (tombstoned by icache pressure) while
    // the optimized body records anew. Modeled counters must stay
    // bit-identical with memoization on or off through that turnover.
    driver::RunOptions o = baseOptions("crypto_pyaes", 60);
    o.tierMode = vm::TierMode::Multi;

    driver::RunOptions memoOn = o;
    memoOn.simMemo = true;
    driver::RunOptions memoOff = o;
    memoOff.simMemo = false;

    driver::RunResult a = driver::runWorkload(memoOn);
    driver::RunResult b = driver::runWorkload(memoOff);

    expectModeledCountersIdentical(a, b);
    EXPECT_GT(a.tierPromotions, 0u);
    EXPECT_GT(a.memoHits, 0u);
    EXPECT_EQ(b.memoHits, 0u);
}

// ---- parallel sweeps --------------------------------------------------

TEST(TierParallel, PerTierCountersInvariantAcrossJobs)
{
    std::vector<driver::RunOptions> runs;
    for (const char *w : {"crypto_pyaes", "chaos"}) {
        driver::RunOptions o = baseOptions(w, 40);
        o.tierMode = vm::TierMode::Multi;
        runs.push_back(o);
    }

    std::vector<driver::RunResult> seq =
        driver::runWorkloadsParallel(runs, 1);
    std::vector<driver::RunResult> par =
        driver::runWorkloadsParallel(runs, 3);

    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(runs[i].workload);
        expectModeledCountersIdentical(seq[i], par[i]);
    }
}

// ---- env hatch --------------------------------------------------------

TEST(TierEnv, EnvHatchOverridesRunOptions)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 40);
    // Options say default; the env hatch forces multi.
    o.tierMode = vm::TierMode::Tier2;
    setenv("XLVM_TIER_MODE", "multi", 1);
    driver::RunResult viaEnv = driver::runWorkload(o);
    unsetenv("XLVM_TIER_MODE");

    driver::RunOptions m = o;
    m.tierMode = vm::TierMode::Multi;
    driver::RunResult viaOpts = driver::runWorkload(m);

    expectModeledCountersIdentical(viaEnv, viaOpts);
    EXPECT_GT(viaEnv.tierPromotions, 0u);
}

TEST(TierEnv, UnknownEnvValueIsIgnored)
{
    driver::RunOptions o = baseOptions("crypto_pyaes", 40);
    setenv("XLVM_TIER_MODE", "bogus", 1);
    driver::RunResult viaEnv = driver::runWorkload(o);
    unsetenv("XLVM_TIER_MODE");

    driver::RunResult plain = driver::runWorkload(o);
    expectModeledCountersIdentical(viaEnv, plain);
    EXPECT_EQ(viaEnv.tier1Compiles, 0u);
}

} // namespace
} // namespace xlvm
