/**
 * @file
 * Basic-block cost memoization tests (sim/block_memo.h).
 *
 * The memo layer's contract is exactness: every modeled counter and
 * every piece of machine state (cache LRU stamps, PHT counters, global
 * history) must be bit-identical with memoization on or off. The tests
 * here drive both a memoizing core and a stepping twin through the same
 * emission streams — including the adversarial cases: icache footprint
 * eviction between executions, gshare PHT aliasing between blocks,
 * divergent branch outcomes, address recycling after a GC free — and
 * compare everything exactly. The executor-level tests additionally
 * prove the compile-time baked SimStream (jit/lower.h) equals what live
 * recording observes, and the end-to-end differentials gate full
 * RunResult counter sets across memo on/off and across --jobs counts.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "jit/opt.h"
#include "jit/recorder.h"
#include "sim/block_memo.h"
#include "sim/emitter.h"
#include "vm/context.h"

namespace xlvm {
namespace {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::RtVal;

// ---- core-level differential harness ---------------------------------

sim::CoreParams
memoParams(bool memo)
{
    sim::CoreParams p;
    p.simMemo = memo;
    return p;
}

/** Every counter and cache statistic must agree between the two cores. */
void
expectCoresIdentical(sim::Core &memo, sim::Core &step)
{
    sim::PerfCounters a = memo.totalCounters();
    sim::PerfCounters b = step.totalCounters();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cyclesFp, b.cyclesFp);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.annotations, b.annotations);
    EXPECT_EQ(memo.icacheUnit().hits(), step.icacheUnit().hits());
    EXPECT_EQ(memo.icacheUnit().misses(), step.icacheUnit().misses());
    EXPECT_EQ(memo.dcacheUnit().hits(), step.dcacheUnit().hits());
    EXPECT_EQ(memo.dcacheUnit().misses(), step.dcacheUnit().misses());
}

/** One steady hot block: straight ALU run, two loads, taken back-edge. */
void
emitHotBlock(sim::Core &c, uint64_t pc, const void *p1, const void *p2)
{
    sim::BlockEmitter e(c, pc);
    e.alu(6);
    e.loadPtr(p1, 1);
    e.alu(2);
    e.loadPtr(p2);
    e.storePtr(p1);
    e.branch(true);
}

TEST(MemoCore, SteadyBlockReplayIsBitIdentical)
{
    sim::Core memo(memoParams(true));
    sim::Core step(memoParams(false));
    ASSERT_TRUE(memo.memoEnabled());
    ASSERT_FALSE(step.memoEnabled());

    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&memo, &step}) {
        c->memoSessionBegin(8);
        for (int i = 0; i < 2000; ++i) {
            emitHotBlock(*c, 0x400000, &obj1, &obj2);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(memo, step);
    sim::MemoStats ms = memo.memoStats();
    EXPECT_GE(ms.blocksCached, 1u);
    EXPECT_GT(ms.hits, 1500u); // warmup re-records, then replays
    EXPECT_GT(ms.replayedInstructions, 0u);
    EXPECT_GT(ms.hitRate(), 0.5);
    EXPECT_EQ(step.memoStats().hits, 0u);
}

TEST(MemoCore, DivergentBranchPatternStaysExact)
{
    sim::Core memo(memoParams(true));
    sim::Core step(memoParams(false));

    int obj = 0;
    for (sim::Core *c : {&memo, &step}) {
        c->memoSessionBegin(4);
        for (int i = 0; i < 600; ++i) {
            sim::BlockEmitter e(*c, 0x500000);
            e.alu(4);
            e.loadPtr(&obj);
            // Alternating outcome: the block's opening signature (and
            // the recorded branch record) flips every iteration, so the
            // memo layer must invalidate / diverge rather than replay a
            // stale outcome.
            e.branch((i & 1) != 0);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(memo, step);
    EXPECT_GT(memo.memoStats().invalidations, 0u);
}

TEST(MemoCore, IcacheEvictionInvalidatesEntries)
{
    sim::Core memo(memoParams(true));
    sim::Core step(memoParams(false));

    int obj1 = 0, obj2 = 0;
    for (sim::Core *c : {&memo, &step}) {
        for (int round = 0; round < 4; ++round) {
            c->memoSessionBegin(8);
            for (int i = 0; i < 200; ++i) {
                emitHotBlock(*c, 0x400000, &obj1, &obj2);
                c->memoBoundary();
            }
            c->memoSessionEnd();
            // Walk 4x the icache capacity between sessions: every line
            // of the hot block's footprint is evicted, so the next
            // armed lookup must verify-fail and re-record rather than
            // apply stale LRU stamps.
            sim::BlockEmitter flush(*c, 0x10000000);
            flush.alu(4 * 32 * 1024 / 4);
        }
    }

    expectCoresIdentical(memo, step);
    EXPECT_GT(memo.memoStats().invalidations, 0u);
    EXPECT_GT(memo.memoStats().hits, 0u);
}

TEST(MemoCore, PhtAliasingBetweenBlocksStaysExact)
{
    // A tiny 16-entry PHT with short history guarantees that the two
    // blocks' conditional branches alias the same saturating counters.
    // Replay must never apply a delta recorded against pre-values the
    // other block has since moved.
    sim::CoreParams p = memoParams(true);
    p.branchPred.gshareBits = 4;
    p.branchPred.historyBits = 4;
    sim::CoreParams q = p;
    q.simMemo = false;
    sim::Core memo(p);
    sim::Core step(q);

    int obj = 0;
    for (sim::Core *c : {&memo, &step}) {
        c->memoSessionBegin(8);
        for (int i = 0; i < 1200; ++i) {
            uint64_t pc = (i & 1) ? 0x610000 : 0x620000;
            sim::BlockEmitter e(*c, pc);
            e.alu(2);
            e.branch((i & 1) != 0); // opposite outcomes alias slots
            e.loadPtr(&obj);
            e.branch(true);
            c->memoBoundary();
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(memo, step);
}

TEST(MemoCore, AddressRecyclingAfterFreeStaysExact)
{
    // Data addresses are never baked into entries: Load/Store records
    // access the dcache live at replay. Releasing a mapping and letting
    // a new object land on a recycled simulated address must therefore
    // stay exact without any explicit memo invalidation.
    sim::Core memo(memoParams(true));
    sim::Core step(memoParams(false));

    for (sim::Core *c : {&memo, &step}) {
        c->memoSessionBegin(8);
        int slotA = 0, slotB = 0;
        for (int round = 0; round < 40; ++round) {
            for (int i = 0; i < 50; ++i) {
                emitHotBlock(*c, 0x400000, &slotA, &slotB);
                c->memoBoundary();
            }
            // "GC frees slotA" — forget its mapping mid-session; the
            // next translate may recycle the simulated address.
            c->releaseDataAddr(&slotA);
        }
        c->memoSessionEnd();
    }

    expectCoresIdentical(memo, step);
    EXPECT_GT(memo.memoStats().hits, 0u);
}

TEST(MemoCore, ResetStatsFlushesMemoState)
{
    sim::Core core(memoParams(true));
    int obj1 = 0, obj2 = 0;

    auto burst = [&] {
        core.memoSessionBegin(8);
        for (int i = 0; i < 500; ++i) {
            emitHotBlock(core, 0x400000, &obj1, &obj2);
            core.memoBoundary();
        }
        core.memoSessionEnd();
    };

    burst();
    sim::PerfCounters first = core.totalCounters();
    ASSERT_GT(core.memoStats().hits, 0u);

    core.resetStats();
    EXPECT_EQ(core.memoStats().hits, 0u);
    EXPECT_EQ(core.memoStats().blocksCached, 0u);
    EXPECT_EQ(core.totalCounters().instructions, 0u);

    // Replaying the identical stream from reset state must reproduce
    // the first run bit for bit — stale entries recorded against the
    // pre-reset cache/predictor state would break this.
    burst();
    sim::PerfCounters second = core.totalCounters();
    EXPECT_EQ(first.instructions, second.instructions);
    EXPECT_EQ(first.cyclesFp, second.cyclesFp);
    EXPECT_EQ(first.mispredicts, second.mispredicts);
    EXPECT_EQ(first.icacheMisses, second.icacheMisses);
    EXPECT_EQ(first.dcacheMisses, second.dcacheMisses);
}

TEST(MemoCore, EnvEscapeHatchDisablesMemo)
{
    setenv("XLVM_NO_SIM_MEMO", "1", 1);
    sim::Core core(memoParams(true));
    unsetenv("XLVM_NO_SIM_MEMO");
    EXPECT_FALSE(core.memoEnabled());
    EXPECT_EQ(core.memoStats().hits, 0u);
}

// ---- executor-level tests --------------------------------------------

jit::Snapshot
frameSnap(void *code, uint32_t pc, std::vector<int32_t> stack)
{
    jit::Snapshot s;
    jit::FrameSnapshot f;
    f.code = code;
    f.pc = pc;
    f.stack = std::move(stack);
    s.frames.push_back(std::move(f));
    return s;
}

/** The canonical boxed counting loop (see test_vm.cc / test_microop.cc). */
jit::Trace *
registerCountingLoop(vm::VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 7, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    EXPECT_TRUE(rec.atMergePoint(0, [&] {
        return frameSnap(code, 7, {in0});
    }));
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});

    jit::OptParams op;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<obj::W_Object *>(p)->typeId())
                 : 0u;
    };
    auto optimized =
        std::make_unique<jit::Trace>(jit::optimize(rec.take(), op));
    optimized->id = ctx.registry.nextId();
    ctx.backend.compile(*optimized);
    return ctx.registry.add(std::move(optimized));
}

TEST(MemoExecutor, BakedSimStreamMatchesLiveRecording)
{
    // This test probes the block-memo recording substrate directly; with
    // the superblock sweep armed the steady-state block is absorbed into
    // segment replay and never recorded, so pin the sweep off.
    vm::VmConfig cfg;
    cfg.core.simSuperblock = false;
    vm::VmContext ctx(cfg);
    ASSERT_TRUE(ctx.core.memoEnabled());
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 64);
    ctx.executor.run(*t, {RtVal::fromRef(ctx.space.newInt(0))});

    const jit::MicroProgram &prog = ctx.backend.program(t->id);
    const jit::SimStream &ss = prog.sim;
    ASSERT_TRUE(ss.memoEligible);
    ASSERT_EQ(ss.sigs.size(), ss.pcOff.size());
    ASSERT_EQ(ss.estRecords, uint32_t(ss.sigs.size()));
    ASSERT_GT(ss.sigs.size(), 3u);

    // The loop body opens with the merge-point dispatch annotation —
    // impure at runtime (the work-rate profiler consumes kDispatch), so
    // it delimits blocks instead of being recorded. The steady-state
    // block is everything after it, through the closing jump.
    constexpr uint64_t kKindMask = 3ull << 62;
    size_t first = 0;
    while (first < ss.sigs.size() &&
           (ss.sigs[first] & kKindMask) == sim::BlockMemo::kSigKindAnnot)
        ++first;
    ASSERT_GT(first, 0u);
    ASSERT_LT(first, ss.sigs.size());
    for (size_t i = first; i < ss.sigs.size(); ++i)
        ASSERT_NE((ss.sigs[i] & kKindMask), sim::BlockMemo::kSigKindAnnot)
            << "single merge point expected in this trace";

    // Every record a memory op, and only those, is listed in memIdx.
    for (uint32_t idx : ss.memIdx) {
        ASSERT_LT(idx, ss.sigs.size());
        uint64_t cls = (ss.sigs[idx] >> 50) & 0xf;
        EXPECT_TRUE(cls == uint64_t(sim::InstClass::Load) ||
                    cls == uint64_t(sim::InstClass::Store));
    }

    sim::BlockMemo *memo = ctx.core.memoForTest();
    ASSERT_NE(memo, nullptr);
    uint64_t key = t->codePc + ss.pcOff[first];
    const std::vector<sim::MemoRec> *recs = memo->entryRecsForTest(key);
    ASSERT_NE(recs, nullptr)
        << "no recorded entry at the baked steady-state block key";
    ASSERT_EQ(recs->size(), ss.sigs.size() - first);
    for (size_t i = first; i < ss.sigs.size(); ++i) {
        EXPECT_EQ((*recs)[i - first].sig, ss.sigs[i]) << "record " << i;
        EXPECT_EQ((*recs)[i - first].pc, t->codePc + ss.pcOff[i])
            << "record " << i;
    }
}

TEST(MemoExecutor, HotLoopBitIdenticalAndHitHeavy)
{
    const int64_t limit = 20000;
    vm::VmConfig offCfg;
    offCfg.core.simMemo = false;
    // Block-memo hit-rate assertions: superblock replay would absorb the
    // hot loop before the block table sees it, so pin the sweep off.
    vm::VmConfig onCfg;
    onCfg.core.simSuperblock = false;
    vm::VmContext on(onCfg);
    vm::VmContext off(offCfg);
    int codeOn, codeOff;
    jit::Trace *tOn = registerCountingLoop(on, &codeOn, limit);
    jit::Trace *tOff = registerCountingLoop(off, &codeOff, limit);

    vm::DeoptResult rOn =
        on.executor.run(*tOn, {RtVal::fromRef(on.space.newInt(0))});
    vm::DeoptResult rOff =
        off.executor.run(*tOff, {RtVal::fromRef(off.space.newInt(0))});

    ASSERT_EQ(rOn.frames.size(), 1u);
    ASSERT_EQ(rOff.frames.size(), 1u);
    EXPECT_EQ(
        static_cast<obj::W_Int *>(rOn.frames[0].stack[0])->value,
        static_cast<obj::W_Int *>(rOff.frames[0].stack[0])->value);

    expectCoresIdentical(on.core, off.core);
    sim::MemoStats ms = on.core.memoStats();
    EXPECT_GE(ms.blocksCached, 1u);
    EXPECT_GT(ms.hits, uint64_t(limit) / 2);
    EXPECT_GT(ms.hitRate(), 0.5);
}

// ---- end-to-end differentials ----------------------------------------

void
expectRunResultsIdentical(const driver::RunResult &a,
                          const driver::RunResult &b)
{
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    EXPECT_EQ(a.branchMissRate, b.branchMissRate);
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        EXPECT_EQ(a.phaseShares[p], b.phaseShares[p]) << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].instructions,
                  b.phaseCounters[p].instructions)
            << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].cyclesFp,
                  b.phaseCounters[p].cyclesFp)
            << "phase " << p;
        EXPECT_EQ(a.phaseCounters[p].mispredicts,
                  b.phaseCounters[p].mispredicts)
            << "phase " << p;
    }
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.traceEnters, b.traceEnters);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.gcAllocations, b.gcAllocations);
    EXPECT_EQ(a.gcFreedObjects, b.gcFreedObjects);
    EXPECT_EQ(a.icacheHits, b.icacheHits);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheHits, b.dcacheHits);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.work, b.work);
}

TEST(MemoDifferential, EndToEndWorkloadCountersIdentical)
{
    driver::RunOptions base;
    base.workload = "crypto_pyaes";
    base.scale = 60;
    base.vm = driver::VmKind::PyPyJit;
    base.loopThreshold = 60;

    driver::RunOptions memoOn = base;
    memoOn.simMemo = true;
    driver::RunOptions memoOff = base;
    memoOff.simMemo = false;

    driver::RunResult a = driver::runWorkload(memoOn);
    driver::RunResult b = driver::runWorkload(memoOff);

    expectRunResultsIdentical(a, b);
    EXPECT_GT(a.memoHits, 0u);
    EXPECT_GE(a.memoBlocksCached, 1u);
    EXPECT_EQ(b.memoHits, 0u);
    EXPECT_EQ(b.memoBlocksCached, 0u);
}

TEST(MemoDifferential, GcHeavyWorkloadCountersIdentical)
{
    // chaos allocates heavily, so GC minors strike mid-trace: GC work
    // splits recorded blocks, frees recycle simulated data addresses,
    // and the memo layer must shrug all of it off exactly.
    driver::RunOptions base;
    base.workload = "chaos";
    base.scale = 3000;
    base.vm = driver::VmKind::PyPyJit;
    base.loopThreshold = 60;

    driver::RunOptions memoOn = base;
    memoOn.simMemo = true;
    driver::RunOptions memoOff = base;
    memoOff.simMemo = false;

    driver::RunResult a = driver::runWorkload(memoOn);
    driver::RunResult b = driver::runWorkload(memoOff);

    expectRunResultsIdentical(a, b);
    EXPECT_GT(a.gcMinor, 0u);
    EXPECT_GT(a.memoHits, 0u);
}

TEST(MemoDifferential, CountersInvariantAcrossJobs)
{
    std::vector<driver::RunOptions> runs;
    for (const char *w : {"crypto_pyaes", "chaos"}) {
        driver::RunOptions o;
        o.workload = w;
        o.scale = 40;
        o.vm = driver::VmKind::PyPyJit;
        o.loopThreshold = 60;
        o.simMemo = true;
        runs.push_back(o);
    }

    std::vector<driver::RunResult> seq =
        driver::runWorkloadsParallel(runs, 1);
    std::vector<driver::RunResult> par =
        driver::runWorkloadsParallel(runs, 3);

    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(runs[i].workload);
        expectRunResultsIdentical(seq[i], par[i]);
        // The host-side memo telemetry itself is deterministic too:
        // each run owns a private core, so job scheduling cannot leak
        // into hit/miss counts.
        EXPECT_EQ(seq[i].memoHits, par[i].memoHits);
        EXPECT_EQ(seq[i].memoMisses, par[i].memoMisses);
        EXPECT_EQ(seq[i].memoInvalidations, par[i].memoInvalidations);
    }
}

} // namespace
} // namespace xlvm
