#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace xlvm {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(11);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBelow(10)];
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 - n / 50);
        EXPECT_LT(b, n / 10 + n / 50);
    }
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(s.maximum(), 3.0);
    EXPECT_NEAR(s.stddev(), 0.8165, 1e-3);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValueHasZeroStddev)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(RunningStat, LargeMeanSmallVariance)
{
    // Regression: the naive sumSq/n - mean^2 variance cancels
    // catastrophically here (it went negative and clamped to 0);
    // Welford's update keeps full precision.
    RunningStat s;
    const double base = 1e9;
    s.add(base + 4.0);
    s.add(base + 7.0);
    s.add(base + 13.0);
    s.add(base + 16.0);
    // Population stddev of {4,7,13,16} is 4.7434...
    EXPECT_NEAR(s.stddev(), 4.74341649, 1e-6);
    EXPECT_DOUBLE_EQ(s.mean(), base + 10.0);
}

TEST(RunningStat, HugeOffsetStddevStaysExact)
{
    // With mean ~1e15 and unit spread, sumSq loses all variance bits.
    RunningStat s;
    for (int i = -2; i <= 2; ++i)
        s.add(1e15 + i);
    // Population stddev of {-2,-1,0,1,2} is sqrt(2).
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-6);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.total(), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Format, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
    EXPECT_EQ(formatFixed(0.5, 0), "0"); // banker-ish rounding via printf
}

TEST(Format, FormatCount)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

} // namespace
} // namespace xlvm
