/**
 * @file
 * Fault-containment subsystem tests.
 *
 * Four layers of coverage:
 *  - the deterministic FaultEngine itself (spec grammar, one-shot
 *    counter semantics, telemetry, disarmed zero-cost contract);
 *  - the verifyTrace() SSA verifier on hand-built malformed traces
 *    (every structural defect class maps to a precise rejection);
 *  - end-to-end injection through the driver: every site produces a
 *    clean, accounted abort — never a crash — and the run completes
 *    with the correct program output;
 *  - graceful-degradation policies: deopt-storm blacklisting with
 *    cooldown re-arm, compile-budget downgrade to tier 1, and
 *    trace-cache pressure eviction.
 *
 * The differential tests pin the subsystem's core invariant: an armed
 * engine whose triggers never fire (and every containment knob at its
 * default) leaves all modeled counters bit-identical, and injected
 * failures are deterministic and --jobs-invariant.
 */

#include <gtest/gtest.h>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "jit/bailout.h"
#include "jit/opt.h"
#include "rt/faults.h"

namespace xlvm {
namespace {

// ---- FaultEngine ------------------------------------------------------

TEST(FaultEngine, EmptySpecStaysDisarmed)
{
    rt::FaultEngine e;
    std::string err;
    EXPECT_TRUE(e.configure("", &err));
    EXPECT_FALSE(e.armed());
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kRecorder));
    EXPECT_EQ(e.visits(rt::FaultSite::kRecorder), 0u);
}

TEST(FaultEngine, FiresExactlyOnNthVisit)
{
    rt::FaultEngine e;
    std::string err;
    ASSERT_TRUE(e.configure("recorder:3", &err)) << err;
    ASSERT_TRUE(e.armed());
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kRecorder));
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kRecorder));
    EXPECT_TRUE(e.shouldFire(rt::FaultSite::kRecorder));
    // One-shot: never again, but visits keep counting.
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kRecorder));
    EXPECT_EQ(e.visits(rt::FaultSite::kRecorder), 4u);
    EXPECT_EQ(e.fired(rt::FaultSite::kRecorder), 1u);
    EXPECT_EQ(e.totalFired(), 1u);
}

TEST(FaultEngine, SpecGrammar)
{
    rt::FaultEngine e;
    std::string err;
    // Default ordinal is 1; "fault@" prefix is optional; commas chain;
    // the last entry wins per site.
    ASSERT_TRUE(e.configure("fault@optimizer,backend:2,optimizer:5",
                            &err))
        << err;
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kBackend));
    EXPECT_TRUE(e.shouldFire(rt::FaultSite::kBackend));
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(e.shouldFire(rt::FaultSite::kOptimizer)) << i;
    EXPECT_TRUE(e.shouldFire(rt::FaultSite::kOptimizer));
    // Unarmed sites never fire.
    EXPECT_FALSE(e.shouldFire(rt::FaultSite::kGcHook));
}

TEST(FaultEngine, MalformedSpecsRejectAndDisarm)
{
    rt::FaultEngine e;
    std::string err;
    for (const char *bad : {"frobnicator", "recorder:0", "recorder:x",
                            "recorder:3junk", "fault@", ":", "recorder:"}) {
        err.clear();
        EXPECT_FALSE(e.configure(bad, &err)) << bad;
        EXPECT_FALSE(e.armed()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
    // A failed configure after a successful one leaves it disarmed.
    ASSERT_TRUE(e.configure("recorder:1", &err));
    EXPECT_FALSE(e.configure("bogus", &err));
    EXPECT_FALSE(e.armed());
}

TEST(FaultEngine, SiteNamesRoundTrip)
{
    for (uint32_t s = 0; s < rt::kNumFaultSites; ++s) {
        rt::FaultSite parsed;
        ASSERT_TRUE(rt::faultSiteFromString(
            rt::faultSiteName(rt::FaultSite(s)), &parsed));
        EXPECT_EQ(uint32_t(parsed), s);
    }
    rt::FaultSite parsed;
    EXPECT_FALSE(rt::faultSiteFromString("no_such_site", &parsed));
}

// ---- verifyTrace ------------------------------------------------------

/** Minimal well-formed loop trace: inputs i0,i1; i2 = i0 + i1; jump. */
jit::Trace
wellFormedTrace()
{
    jit::Trace t;
    t.numInputs = 2;
    t.boxTypes = {jit::BoxType::Int, jit::BoxType::Int};
    jit::ResOp add;
    add.op = jit::IrOp::IntAdd;
    add.args[0] = 0;
    add.args[1] = 1;
    add.result = t.newBox(jit::BoxType::Int);
    t.ops.push_back(add);
    jit::ResOp guard;
    guard.op = jit::IrOp::GuardTrue;
    guard.args[0] = 2;
    guard.snapshotIdx = 0;
    jit::Snapshot snap;
    jit::FrameSnapshot f;
    f.locals = {0, 2};
    snap.frames.push_back(f);
    t.snapshots.push_back(snap);
    t.ops.push_back(guard);
    jit::ResOp jump;
    jump.op = jit::IrOp::Jump;
    jump.args[0] = 2;
    jump.args[1] = 1;
    t.ops.push_back(jump);
    return t;
}

TEST(VerifyTrace, AcceptsWellFormedTrace)
{
    jit::VerifyResult v = jit::verifyTrace(wellFormedTrace());
    EXPECT_TRUE(v.ok) << v.detail;
    EXPECT_EQ(v.reason, jit::AbortReason::kNone);
    EXPECT_TRUE(v.detail.empty());
}

TEST(VerifyTrace, RejectsUseBeforeDefinition)
{
    jit::Trace t = wellFormedTrace();
    t.ops[0].args[1] = 7; // box 7 never defined
    jit::VerifyResult v = jit::verifyTrace(t);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.reason, jit::AbortReason::kMalformedTrace);
    EXPECT_NE(v.detail.find("before definition"), std::string::npos)
        << v.detail;
}

TEST(VerifyTrace, RejectsConstRefOutsideTable)
{
    jit::Trace t = wellFormedTrace();
    t.ops[0].args[1] = jit::makeConstRef(3); // const table is empty
    jit::VerifyResult v = jit::verifyTrace(t);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.detail.find("const"), std::string::npos) << v.detail;
}

TEST(VerifyTrace, RejectsResultRedefinition)
{
    jit::Trace t = wellFormedTrace();
    t.ops[0].result = 1; // input box, already defined
    jit::VerifyResult v = jit::verifyTrace(t);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.detail.find("redefines"), std::string::npos) << v.detail;
}

TEST(VerifyTrace, RejectsSnapshotIndexOutOfRange)
{
    jit::Trace t = wellFormedTrace();
    t.ops[1].snapshotIdx = 9;
    jit::VerifyResult v = jit::verifyTrace(t);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.detail.find("snapshot index"), std::string::npos)
        << v.detail;
}

TEST(VerifyTrace, RejectsVirtualRefInOpArgs)
{
    jit::Trace t = wellFormedTrace();
    t.virtuals.push_back(jit::VirtualObj());
    t.ops[0].args[0] = jit::makeVirtualRef(0);
    jit::VerifyResult v = jit::verifyTrace(t);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.detail.find("virtual"), std::string::npos) << v.detail;
}

TEST(VerifyTrace, AcceptsVirtualRefInSnapshotAndChecksFields)
{
    jit::Trace t = wellFormedTrace();
    jit::VirtualObj v;
    v.numFields = 1;
    v.fieldRefs = {0};
    t.virtuals.push_back(v);
    t.snapshots[0].frames[0].locals[1] = jit::makeVirtualRef(0);
    EXPECT_TRUE(jit::verifyTrace(t).ok);
    // A virtual whose field uses an undefined box is rejected too.
    t.virtuals[0].fieldRefs = {9};
    EXPECT_FALSE(jit::verifyTrace(t).ok);
    // Out-of-range virtual index.
    t.snapshots[0].frames[0].locals[1] = jit::makeVirtualRef(4);
    EXPECT_FALSE(jit::verifyTrace(t).ok);
}

TEST(VerifyTrace, SurvivesCyclicVirtuals)
{
    jit::Trace t = wellFormedTrace();
    jit::VirtualObj v;
    v.numFields = 1;
    v.fieldRefs = {jit::makeVirtualRef(0)}; // self-referential
    t.virtuals.push_back(v);
    t.snapshots[0].frames[0].locals[1] = jit::makeVirtualRef(0);
    EXPECT_TRUE(jit::verifyTrace(t).ok);
}

TEST(VerifyTrace, CallAssemblerContract)
{
    // call_assembler io snapshot: frames[0]=args (uses), frames[1]=exit
    // contract (fresh definitions), frames[2..]=outer resume (uses
    // against the PRE-call bound).
    jit::Trace t;
    t.numInputs = 2;
    t.boxTypes = {jit::BoxType::Int, jit::BoxType::Int,
                  jit::BoxType::Int};
    jit::ResOp ca;
    ca.op = jit::IrOp::CallAssembler;
    ca.aux = 1;
    ca.snapshotIdx = 0;
    jit::Snapshot io;
    jit::FrameSnapshot args, exitC, outer;
    args.locals = {0, 1};
    exitC.locals = {2}; // fresh box definition
    outer.locals = {0};
    io.frames = {args, exitC, outer};
    t.snapshots.push_back(io);
    t.ops.push_back(ca);
    EXPECT_TRUE(jit::verifyTrace(t).ok);

    // Exit contract referencing an already-live box is the exact shape
    // of the historical hexiom2@130 bug — must be rejected.
    jit::Trace bad = t;
    bad.snapshots[0].frames[1].locals = {1};
    jit::VerifyResult v =
        jit::verifyTrace(bad, jit::AbortReason::kMalformedTrace);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.detail.find("not fresh"), std::string::npos) << v.detail;

    // Outer resume frames must not use the exit contract's fresh boxes.
    bad = t;
    bad.snapshots[0].frames[2].locals = {2};
    EXPECT_FALSE(jit::verifyTrace(bad).ok);

    // Fewer than two frames / missing snapshot are malformed.
    bad = t;
    bad.snapshots[0].frames.resize(1);
    EXPECT_FALSE(jit::verifyTrace(bad).ok);
    bad = t;
    bad.ops[0].snapshotIdx = -1;
    EXPECT_FALSE(jit::verifyTrace(bad).ok);
}

TEST(VerifyTrace, ReportsRequestedReason)
{
    jit::Trace t = wellFormedTrace();
    t.ops[0].args[1] = 7;
    jit::VerifyResult v =
        jit::verifyTrace(t, jit::AbortReason::kOptimizerFailure);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.reason, jit::AbortReason::kOptimizerFailure);
}

TEST(AbortReason, NamesAndPayloadRoundTrip)
{
    for (uint32_t r = 0; r < jit::kNumAbortReasons; ++r) {
        EXPECT_STRNE(jit::abortReasonName(jit::AbortReason(r)),
                     "unknown");
        EXPECT_EQ(uint32_t(jit::abortReasonFromPayload(r)), r);
    }
    EXPECT_EQ(jit::abortReasonFromPayload(999),
              jit::AbortReason::kNone);
}

// ---- end-to-end injection --------------------------------------------

driver::RunOptions
jitOptions(const char *workload)
{
    driver::RunOptions o;
    o.workload = workload;
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 60;
    o.bridgeThreshold = 20;
    o.maxInstructions = 200u * 1000 * 1000;
    return o;
}

uint64_t
aborts(const driver::RunResult &r, jit::AbortReason reason)
{
    return r.abortReasons[uint32_t(reason)];
}

void
expectModeledIdentical(const driver::RunResult &a,
                       const driver::RunResult &b)
{
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.tracesAborted, b.tracesAborted);
    EXPECT_EQ(a.traceEnters, b.traceEnters);
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    for (uint32_t r = 0; r < jit::kNumAbortReasons; ++r)
        EXPECT_EQ(a.abortReasons[r], b.abortReasons[r]) << "reason " << r;
    EXPECT_EQ(a.tracesBlacklisted, b.tracesBlacklisted);
    EXPECT_EQ(a.tracesEvicted, b.tracesEvicted);
    EXPECT_EQ(a.compileDowngrades, b.compileDowngrades);
}

TEST(FaultInjection, RecorderFaultAbortsRecordingNotTheRun)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.inject = "recorder:1";
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_EQ(r.output, base.output);
    EXPECT_GE(aborts(r, jit::AbortReason::kInjected), 1u);
    EXPECT_GE(r.faultFired[uint32_t(rt::FaultSite::kRecorder)], 1u);
    EXPECT_TRUE(r.faultsArmed);
}

TEST(FaultInjection, BackendFaultDiscardsCompilation)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.inject = "backend:1";
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, base.output);
    EXPECT_GE(aborts(r, jit::AbortReason::kInjected), 1u);
    // The discarded registration costs one compiled loop or bridge.
    EXPECT_LE(r.loopsCompiled + r.bridgesCompiled,
              base.loopsCompiled + base.bridgesCompiled);
}

TEST(FaultInjection, OptimizerFaultDowngradesToTier1)
{
    driver::RunOptions o = jitOptions("richards");
    o.inject = "optimizer:1";
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    // Containment is a downgrade, not a loss: the trace still compiles
    // at tier 1 and the run keeps its native execution.
    EXPECT_GE(r.compileDowngrades, 1u);
    EXPECT_GE(r.tier1Compiles, 1u);
    EXPECT_GE(r.loopsCompiled, 1u);
}

TEST(FaultInjection, TraceCacheFaultAbortsRegistration)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.inject = "trace_cache:1";
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, base.output);
    EXPECT_GE(aborts(r, jit::AbortReason::kTraceCacheFull), 1u);
}

TEST(FaultInjection, GcHookAndSimMemoFaultsAreContained)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.inject = "gc_hook:1";
    driver::RunResult g = driver::runWorkload(o);
    ASSERT_TRUE(g.completed);
    EXPECT_EQ(g.output, base.output);
    // sim_memo injection drops host-side memo entries; the modeled
    // counters must not move at all (the accelerator contract).
    o.inject = "sim_memo:1";
    driver::RunResult s = driver::runWorkload(o);
    expectModeledIdentical(base, s);
    EXPECT_GE(s.faultFired[uint32_t(rt::FaultSite::kSimMemo)], 1u);
}

TEST(FaultInjection, EverySiteFirstVisitIsContained)
{
    // The in-process chaos sweep: for each site, fire on the first
    // visit and require clean completion with correct output and the
    // fault accounted (fired implies either an abort, a downgrade, or
    // a host-side-only effect).
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    for (uint32_t s = 0; s < rt::kNumFaultSites; ++s) {
        driver::RunOptions inj = o;
        inj.inject = rt::faultSiteName(rt::FaultSite(s));
        driver::RunResult r = driver::runWorkload(inj);
        EXPECT_TRUE(r.completed) << inj.inject;
        EXPECT_TRUE(r.error.empty()) << inj.inject << ": " << r.error;
        EXPECT_EQ(r.output, base.output) << inj.inject;
    }
}

TEST(FaultInjection, MalformedSpecIsACleanError)
{
    driver::RunOptions o = jitOptions("richards");
    o.inject = "frobnicator:1";
    EXPECT_THROW(driver::runWorkload(o), std::invalid_argument);
}

// ---- disarmed / armed-idle bit-identity -------------------------------

TEST(FaultInjection, ArmedButIdleEngineIsInvisible)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    // Armed for a visit ordinal that is never reached: the probe
    // branches must not move any modeled counter (the fifth golden
    // pass enforces the same contract across the full golden set).
    o.inject = "recorder:1000000000,backend:1000000000";
    driver::RunResult armed = driver::runWorkload(o);
    expectModeledIdentical(base, armed);
    EXPECT_FALSE(base.faultsArmed);
    EXPECT_TRUE(armed.faultsArmed);
    EXPECT_GE(armed.faultVisits[uint32_t(rt::FaultSite::kRecorder)], 1u);
    EXPECT_EQ(armed.faultFired[uint32_t(rt::FaultSite::kRecorder)], 0u);
}

TEST(FaultInjection, InjectedRunsAreDeterministicAndJobsInvariant)
{
    driver::RunOptions o = jitOptions("richards");
    o.inject = "recorder:2,optimizer:1";
    std::vector<driver::RunOptions> runs(4, o);
    std::vector<driver::RunResult> seq =
        driver::runWorkloadsParallel(runs, 1);
    std::vector<driver::RunResult> par =
        driver::runWorkloadsParallel(runs, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        expectModeledIdentical(seq[i], par[i]);
        for (uint32_t s = 0; s < rt::kNumFaultSites; ++s) {
            EXPECT_EQ(seq[i].faultVisits[s], par[i].faultVisits[s]);
            EXPECT_EQ(seq[i].faultFired[s], par[i].faultFired[s]);
        }
    }
}

// ---- graceful degradation --------------------------------------------

TEST(StormBlacklist, GuardChurnTriggersBlacklistAndRearm)
{
    driver::RunOptions o = jitOptions("guard_churn");
    o.scale = 3000;
    o.stormThreshold = 25;
    o.blacklistCooldown = 50;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, "806400\n");
    EXPECT_GE(r.tracesBlacklisted, 1u);
    // The cooldown re-arms the trace; the storm re-blacklists it with
    // a doubled cooldown (exponential backoff), so with a long cold
    // phase both counters move.
    EXPECT_GE(r.tracesRearmed, 1u);
    EXPECT_GE(r.tracesBlacklisted, r.tracesRearmed);
}

TEST(StormBlacklist, ZeroThresholdDisablesBlacklisting)
{
    driver::RunOptions o = jitOptions("guard_churn");
    o.scale = 3000;
    o.stormThreshold = 0;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, "806400\n");
    EXPECT_EQ(r.tracesBlacklisted, 0u);
    EXPECT_EQ(r.tracesRearmed, 0u);
}

TEST(StormBlacklist, BlacklistingShedsDeoptPressure)
{
    driver::RunOptions off = jitOptions("guard_churn");
    off.scale = 3000;
    off.stormThreshold = 0;
    driver::RunOptions on = off;
    on.stormThreshold = 25;
    on.blacklistCooldown = 400;
    driver::RunResult roff = driver::runWorkload(off);
    driver::RunResult ron = driver::runWorkload(on);
    ASSERT_TRUE(roff.completed);
    ASSERT_TRUE(ron.completed);
    EXPECT_EQ(roff.output, ron.output);
    // Demoting the storming trace to the interpreter must strictly
    // reduce deopts — that is the whole point of the policy.
    EXPECT_LT(ron.deopts, roff.deopts);
}

TEST(CompileBudget, TinyBudgetDowngradesToTier1)
{
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.compileBudgetOps = 5; // every real trace exceeds this
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, base.output);
    EXPECT_GE(r.compileDowngrades, 1u);
    EXPECT_GE(r.tier1Compiles, 1u);
    EXPECT_GE(aborts(r, jit::AbortReason::kNone), 0u); // array readable
    // Budget containment compiles instead of aborting.
    EXPECT_GE(r.loopsCompiled, 1u);
}

TEST(TraceCachePressure, EvictionKeepsCapAndCompletes)
{
    // loop_parade has eight independent hot loops with no cross-trace
    // references, so earlier (cold) roots are genuinely evictable once
    // the cap forces a choice. richards would NOT work here: its single
    // loop root is pinned by its own bridges.
    driver::RunOptions o = jitOptions("loop_parade");
    driver::RunResult base = driver::runWorkload(o);
    ASSERT_TRUE(base.completed);
    ASSERT_GT(base.liveTraces, 2u)
        << "workload too small to exercise eviction";
    o.maxTraces = 2;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, base.output);
    EXPECT_GE(r.tracesEvicted, 1u);
    EXPECT_LE(r.liveTraces, 2u);
}

TEST(TraceCachePressure, UnevictableCacheAbortsCleanly)
{
    // maxTraces=1 with bridges pinning their parents: when nothing is
    // evictable the registration aborts with kTraceCacheFull and the
    // run still completes correctly in the interpreter.
    driver::RunOptions o = jitOptions("richards");
    driver::RunResult base = driver::runWorkload(o);
    o.maxTraces = 1;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, base.output);
    EXPECT_LE(r.liveTraces, 1u);
}

} // namespace
} // namespace xlvm
