/**
 * @file
 * Every workload must parse, compile, run to completion at a reduced
 * scale, and — the key meta-tracing property — produce identical output
 * with the JIT enabled and disabled.
 */

#include <gtest/gtest.h>

#include "minipy/compiler.h"
#include "minipy/interp.h"
#include "vm/context.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace workloads {
namespace {

/** Reduced scales so the whole suite runs in seconds. */
int64_t
testScale(const Workload &w)
{
    int64_t n = w.defaultScale / 4;
    return n > 0 ? n : 1;
}

std::string
runPyAt(const std::string &src, bool jit, uint32_t loop_threshold,
        uint32_t bridge_threshold)
{
    vm::VmConfig cfg;
    cfg.jit.enableJit = jit;
    cfg.jit.loopThreshold = loop_threshold;
    cfg.jit.bridgeThreshold = bridge_threshold;
    cfg.maxInstructions = 400u * 1000 * 1000;
    vm::VmContext ctx(cfg);
    auto prog = minipy::compileSource(src, ctx.space);
    minipy::Interp interp(ctx, *prog);
    EXPECT_TRUE(interp.run()) << "instruction budget exhausted";
    return interp.output();
}

std::string
runPy(const std::string &src, bool jit)
{
    return runPyAt(src, jit, 25, 12);
}

class WorkloadAgreement : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadAgreement, JitMatchesInterp)
{
    const Workload *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    std::string src = instantiate(*w, testScale(*w));
    std::string off = runPy(src, false);
    std::string on = runPy(src, true);
    EXPECT_FALSE(off.empty()) << w->name << " produced no output";
    EXPECT_EQ(off, on) << w->name << " diverges under JIT";
}

/**
 * Output must be invariant across the whole JIT-threshold space.
 * Threshold 1 is the stress corner: every loop traces on its first
 * JumpBack, so traces are recorded from cold state (empty caches, maps
 * mid-transition, iterators freshly created) and bridges grow off
 * guards that have fired exactly once.
 */
class ThresholdSweep
    : public ::testing::TestWithParam<std::tuple<std::string, uint32_t>>
{
};

TEST_P(ThresholdSweep, OutputInvariant)
{
    const auto &[name, threshold] = GetParam();
    const Workload *w = findWorkload(name);
    ASSERT_NE(w, nullptr);
    std::string src = instantiate(*w, testScale(*w));
    std::string ref = runPyAt(src, false, 25, 12);
    std::string got =
        runPyAt(src, true, threshold, std::max(threshold / 2, 1u));
    EXPECT_EQ(ref, got)
        << name << " diverges at loopThreshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    Stress, ThresholdSweep,
    ::testing::Combine(
        ::testing::Values("richards", "fannkuch", "json_bench", "chaos",
                          "float", "hexiom2", "go", "pyflate_fast"),
        ::testing::Values(1u, 3u, 7u, 60u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint32_t>>
           &info) {
        return std::get<0>(info.param) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Workload &w : pypySuite())
        names.push_back(w.name);
    for (const Workload &w : clbgSuite()) {
        if (!findWorkload(w.name) || w.suite == "clbg") {
            // Skip aliases that reuse a pypy source already covered.
            bool aliased = false;
            for (const Workload &p : pypySuite()) {
                if (p.source == w.source)
                    aliased = true;
            }
            if (!aliased)
                names.push_back(w.name);
        }
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadAgreement, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Registry, SuitesPopulated)
{
    EXPECT_GE(pypySuite().size(), 20u);
    EXPECT_GE(clbgSuite().size(), 12u);
    for (const Workload &w : pypySuite()) {
        EXPECT_FALSE(w.source.empty()) << w.name;
        EXPECT_FALSE(w.models.empty()) << w.name;
        EXPECT_GT(w.defaultScale, 0) << w.name;
    }
}

TEST(Registry, FindAndInstantiate)
{
    const Workload *w = findWorkload("pidigits");
    ASSERT_NE(w, nullptr);
    std::string src = instantiate(*w, 5);
    EXPECT_EQ(src.find("{N}"), std::string::npos);
    EXPECT_NE(src.find("pi_digits(5)"), std::string::npos);
    EXPECT_EQ(findWorkload("no_such_bench"), nullptr);
}

TEST(Registry, ClbgRktSourcesAttached)
{
    int withRkt = 0;
    for (const Workload &w : clbgSuite()) {
        if (!w.rktSource.empty())
            ++withRkt;
    }
    EXPECT_GE(withRkt, 10);
}

} // namespace
} // namespace workloads
} // namespace xlvm
