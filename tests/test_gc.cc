#include <gtest/gtest.h>

#include <vector>

#include "gc/heap.h"

namespace xlvm {
namespace gc {
namespace {

/** Test object: a node with up to two child references and a payload. */
class Node : public GcObject
{
  public:
    explicit Node(size_t payload = 0) : payloadBytes(payload)
    {
        ++liveCount;
    }
    ~Node() override { --liveCount; }

    void
    traceRefs(GcVisitor &v) override
    {
        v.visit(left);
        v.visit(right);
    }

    size_t heapBytes() const override { return sizeof(Node) + payloadBytes; }

    Node *left = nullptr;
    Node *right = nullptr;
    size_t payloadBytes;

    static int liveCount;
};

int Node::liveCount = 0;

/** Simple explicit root list. */
class Roots : public RootProvider
{
  public:
    void
    forEachRoot(GcVisitor &v) override
    {
        for (Node *n : pinned)
            v.visit(n);
    }
    std::vector<Node *> pinned;
};

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest()
    {
        Node::liveCount = 0;
        params.nurseryBytes = 4096;
        heap = std::make_unique<Heap>(params);
        heap->addRootProvider(&roots);
    }

    HeapParams params;
    std::unique_ptr<Heap> heap;
    Roots roots;
};

TEST_F(HeapTest, UnreachableYoungObjectsFreedByMinor)
{
    for (int i = 0; i < 10; ++i)
        heap->alloc<Node>();
    EXPECT_EQ(Node::liveCount, 10);
    heap->collect();
    EXPECT_EQ(Node::liveCount, 0);
    EXPECT_EQ(heap->stats().minorCollections, 1u);
}

TEST_F(HeapTest, RootedObjectsSurviveAndArePromoted)
{
    Node *a = heap->alloc<Node>();
    roots.pinned.push_back(a);
    heap->alloc<Node>(); // garbage
    heap->collect();
    EXPECT_EQ(Node::liveCount, 1);
    EXPECT_TRUE(a->isOld());
    EXPECT_EQ(heap->oldObjectCount(), 1u);
    EXPECT_EQ(heap->youngObjectCount(), 0u);
}

TEST_F(HeapTest, TransitiveReachabilityViaFields)
{
    Node *a = heap->alloc<Node>();
    Node *b = heap->alloc<Node>();
    Node *c = heap->alloc<Node>();
    a->left = b;
    b->right = c;
    roots.pinned.push_back(a);
    heap->collect();
    EXPECT_EQ(Node::liveCount, 3);
}

TEST_F(HeapTest, WriteBarrierKeepsOldToYoungAlive)
{
    Node *parent = heap->alloc<Node>();
    roots.pinned.push_back(parent);
    heap->collect(); // promote parent
    ASSERT_TRUE(parent->isOld());

    Node *child = heap->alloc<Node>();
    parent->left = child;
    heap->writeBarrier(parent);
    // Child is only reachable through the old parent.
    heap->collect();
    EXPECT_EQ(Node::liveCount, 2);
    EXPECT_TRUE(child->isOld());
}

TEST_F(HeapTest, MissingWriteBarrierWouldLoseObject)
{
    // Documents why the barrier is required: without it, a young object
    // referenced only from an old object is collected.
    Node *parent = heap->alloc<Node>();
    roots.pinned.push_back(parent);
    heap->collect();
    Node *child = heap->alloc<Node>();
    parent->left = child;
    // No writeBarrier call on purpose.
    heap->collect();
    EXPECT_EQ(Node::liveCount, 1);
    parent->left = nullptr; // don't leave a dangling ref around
}

TEST_F(HeapTest, SafepointTriggersOnWatermark)
{
    // Allocate beyond the nursery size with big payloads.
    for (int i = 0; i < 10; ++i)
        heap->alloc<Node>(1024);
    EXPECT_TRUE(heap->collectionNeeded());
    heap->safepoint();
    EXPECT_EQ(heap->stats().minorCollections, 1u);
    EXPECT_FALSE(heap->collectionNeeded());
}

TEST_F(HeapTest, MajorCollectionFreesOldGarbage)
{
    Node *a = heap->alloc<Node>();
    roots.pinned.push_back(a);
    heap->collect();
    ASSERT_TRUE(a->isOld());
    roots.pinned.clear(); // now old garbage
    heap->collectMajor();
    EXPECT_EQ(Node::liveCount, 0);
    EXPECT_EQ(heap->oldObjectCount(), 0u);
    EXPECT_EQ(heap->stats().majorCollections, 1u);
}

TEST_F(HeapTest, MajorTriggeredByGrowth)
{
    params.majorMinBytes = 2048;
    heap = std::make_unique<Heap>(params);
    heap->addRootProvider(&roots);
    // Promote a lot of live data repeatedly to push oldBytes up.
    for (int round = 0; round < 50; ++round) {
        Node *n = heap->alloc<Node>(512);
        roots.pinned.push_back(n);
        heap->collect();
        if (round == 20)
            roots.pinned.clear(); // old garbage accumulates
    }
    EXPECT_GE(heap->stats().majorCollections, 1u);
}

TEST_F(HeapTest, CyclesAreCollected)
{
    Node *a = heap->alloc<Node>();
    Node *b = heap->alloc<Node>();
    a->left = b;
    b->left = a; // cycle, unreachable
    heap->collect();
    EXPECT_EQ(Node::liveCount, 0);
}

TEST_F(HeapTest, CyclesSurviveWhenRooted)
{
    Node *a = heap->alloc<Node>();
    Node *b = heap->alloc<Node>();
    a->left = b;
    b->left = a;
    roots.pinned.push_back(a);
    heap->collect();
    EXPECT_EQ(Node::liveCount, 2);
}

struct CountingHooks : public GcHooks
{
    int starts = 0;
    int ends = 0;
    GcCollectionStats last;
    void onCollectStart(bool) override { ++starts; }
    void
    onCollectEnd(const GcCollectionStats &s) override
    {
        ++ends;
        last = s;
    }
};

TEST_F(HeapTest, HooksReceiveStats)
{
    CountingHooks hooks;
    heap->setHooks(&hooks);
    Node *a = heap->alloc<Node>(100);
    roots.pinned.push_back(a);
    heap->alloc<Node>(200); // garbage
    heap->collect();
    EXPECT_EQ(hooks.starts, 1);
    EXPECT_EQ(hooks.ends, 1);
    EXPECT_FALSE(hooks.last.major);
    EXPECT_EQ(hooks.last.objectsFreed, 1u);
    EXPECT_GT(hooks.last.bytesPromoted, 100u);
}

TEST_F(HeapTest, NoteExtraBytesAdvancesWatermark)
{
    heap->alloc<Node>();
    EXPECT_FALSE(heap->collectionNeeded());
    heap->noteExtraBytes(params.nurseryBytes);
    EXPECT_TRUE(heap->collectionNeeded());
}

TEST_F(HeapTest, RemovedRootProviderNotScanned)
{
    Node *a = heap->alloc<Node>();
    roots.pinned.push_back(a);
    heap->removeRootProvider(&roots);
    heap->collect();
    EXPECT_EQ(Node::liveCount, 0);
    roots.pinned.clear();
    heap->addRootProvider(&roots); // restore for fixture teardown
}

} // namespace
} // namespace gc
} // namespace xlvm
