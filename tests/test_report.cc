/**
 * @file
 * Tests for the metrics-export subsystem: JSON round-trips (escaping,
 * nesting, 64-bit integer exactness), MetricsRegistry schema shape, and
 * the golden-snapshot comparator that xlvm-check-golden wraps.
 */

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "report/golden.h"
#include "report/json.h"
#include "report/metrics.h"

using namespace xlvm;
using namespace xlvm::report;

// ---- JSON value / serializer / parser -----------------------------------

TEST(Json, RoundTripScalars)
{
    EXPECT_EQ(Json(uint64_t(0)).dump(0), "0");
    EXPECT_EQ(Json(true).dump(0), "true");
    EXPECT_EQ(Json(false).dump(0), "false");
    EXPECT_EQ(Json().dump(0), "null");
    EXPECT_EQ(Json(int64_t(-42)).dump(0), "-42");
    EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
}

TEST(Json, LargeUInt64WithoutPrecisionLoss)
{
    // 2^53 + 1 and UINT64_MAX are not representable as doubles; they
    // must survive a serialize/parse cycle bit-exactly.
    const uint64_t vals[] = {9007199254740993ull, 18446744073709551615ull,
                             1234567890123456789ull};
    for (uint64_t v : vals) {
        std::string text = Json(v).dump(0);
        std::string err;
        Json back = Json::parse(text, &err);
        ASSERT_TRUE(err.empty()) << err;
        ASSERT_TRUE(back.isInteger()) << text;
        EXPECT_EQ(back.asUInt(), v);
    }
}

TEST(Json, StringEscaping)
{
    std::string nasty = "quote\" back\\slash \n\t\r\b\f ctrl\x01 end";
    std::string text = Json(nasty).dump(0);
    std::string err;
    Json back = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.asString(), nasty);
    // The control character must be \u-escaped, not emitted raw.
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
}

TEST(Json, UnicodeEscapeParses)
{
    std::string err;
    Json v = Json::parse("\"a\\u00e9b\\u0041\"", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "a\xc3\xa9"
                            "bA");
}

TEST(Json, NestedObjectsKeepInsertionOrder)
{
    Json doc = Json::object();
    doc.set("zebra", Json(uint64_t(1)));
    doc.set("alpha", Json(uint64_t(2)));
    Json inner = Json::object();
    inner.set("y", Json(uint64_t(3)));
    inner.set("x", Json::array());
    doc.set("nested", std::move(inner));

    std::string text = doc.dump(0);
    // Insertion order, not sorted order.
    EXPECT_EQ(text,
              "{\"zebra\":1,\"alpha\":2,\"nested\":{\"y\":3,\"x\":[]}}");

    std::string err;
    Json back = Json::parse(doc.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.dump(0), text);
}

TEST(Json, FloatsRoundTripExactly)
{
    const double vals[] = {0.0008932239166666667, 1.0 / 3.0, 3.46,
                           1e-300, 12345678.875};
    for (double v : vals) {
        std::string text = Json(v).dump(0);
        std::string err;
        Json back = Json::parse(text, &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.asDouble(), v) << text;
    }
    // Integral doubles keep a float marker so kinds survive reparse.
    EXPECT_EQ(Json(2.0).dump(0), "2.0");
    EXPECT_FALSE(Json::parse("2.0").isInteger());
}

TEST(Json, ParseErrorsAreReported)
{
    std::string err;
    Json v = Json::parse("{\"a\": }", &err);
    EXPECT_TRUE(v.isNull());
    EXPECT_FALSE(err.empty());
    err.clear();
    Json::parse("[1, 2", &err);
    EXPECT_FALSE(err.empty());
    err.clear();
    Json::parse("{} trailing", &err);
    EXPECT_FALSE(err.empty());
}

// ---- --report argument parsing ------------------------------------------

TEST(ReportArgs, ParsesFormatsAndPaths)
{
    const char *argv[] = {"bench", "--report", "json:/tmp/x.json",
                          "--report=csv", "--jobs", "4"};
    std::vector<ReportTarget> targets;
    std::string err;
    ASSERT_TRUE(targetsFromArgs(6, const_cast<char **>(argv), "stem",
                                &targets, &err))
        << err;
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].format, ReportTarget::Format::Json);
    EXPECT_EQ(targets[0].path, "/tmp/x.json");
    EXPECT_EQ(targets[1].format, ReportTarget::Format::Csv);
    EXPECT_EQ(targets[1].path, "stem.csv");
}

TEST(ReportArgs, RejectsUnknownFormat)
{
    const char *argv[] = {"bench", "--report", "xml:/tmp/x"};
    std::vector<ReportTarget> targets;
    std::string err;
    EXPECT_FALSE(targetsFromArgs(3, const_cast<char **>(argv), "stem",
                                 &targets, &err));
    EXPECT_NE(err.find("xml"), std::string::npos);
}

// ---- MetricsRegistry schema ---------------------------------------------

namespace {

driver::RunOptions
sampleOptions()
{
    driver::RunOptions o;
    o.workload = "richards";
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 120;
    return o;
}

driver::RunResult
sampleResult()
{
    driver::RunResult r;
    r.completed = true;
    r.phaseCounters[0].instructions = 1000;
    r.phaseCounters[0].cyclesFp = 4000;
    r.phaseCounters[2].instructions = 500;
    r.ipc = 1.5;
    r.loopsCompiled = 3;
    r.gcAllocations = 77;
    r.icacheHits = 123456;
    r.work = 42;
    return r;
}

} // namespace

TEST(MetricsRegistry, SchemaShape)
{
    MetricsRegistry reg("unit");
    reg.addRun(sampleOptions(), sampleResult());
    Json doc = reg.toJson();

    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.get("schema_version"), nullptr);
    EXPECT_EQ(doc.get("schema_version")->asUInt(),
              MetricsRegistry::kSchemaVersion);
    EXPECT_EQ(doc.get("report")->asString(), "unit");

    const Json &runs = *doc.get("runs");
    ASSERT_EQ(runs.size(), 1u);
    const Json &run = runs.at(0);
    EXPECT_EQ(run.get("workload")->asString(), "richards");
    EXPECT_EQ(run.get("vm")->asString(), "PyPy*");
    EXPECT_TRUE(run.get("completed")->asBool());

    const Json &metrics = *run.get("metrics");
    ASSERT_NE(metrics.get("totals"), nullptr);
    EXPECT_EQ(metrics.get("totals")->get("instructions")->asUInt(), 1500u);
    ASSERT_NE(metrics.get("phases"), nullptr);
    EXPECT_EQ(metrics.get("phases")
                  ->get("interp")
                  ->get("instructions")
                  ->asUInt(),
              1000u);
    EXPECT_EQ(metrics.get("phases")->get("jit")->get("instructions")
                  ->asUInt(),
              500u);
    EXPECT_EQ(metrics.get("events")->get("loops_compiled")->asUInt(), 3u);
    EXPECT_EQ(metrics.get("gc")->get("allocations")->asUInt(), 77u);
    EXPECT_EQ(metrics.get("caches")->get("icache_hits")->asUInt(),
              123456u);
    EXPECT_EQ(metrics.get("interp")->get("total_work")->asUInt(), 42u);
    // Derived ratios are floats.
    EXPECT_EQ(metrics.get("totals")->get("ipc")->kind(),
              Json::Kind::Float);
}

TEST(MetricsRegistry, CsvAgreesWithJsonCoverage)
{
    MetricsRegistry reg("unit");
    reg.addRun(sampleOptions(), sampleResult());
    std::string csv = reg.toCsv();
    EXPECT_NE(csv.find("workload,vm,run,section,counter,value\n"),
              std::string::npos);
    EXPECT_NE(csv.find("richards,PyPy*,0,totals,instructions,1500"),
              std::string::npos);
    EXPECT_NE(csv.find("richards,PyPy*,0,phases/interp,instructions,"
                       "1000"),
              std::string::npos);
    EXPECT_NE(csv.find("richards,PyPy*,0,gc,allocations,77"),
              std::string::npos);
}

TEST(MetricsRegistry, JsonIsByteStableAcrossIdenticalRuns)
{
    MetricsRegistry a("unit"), b("unit");
    a.addRun(sampleOptions(), sampleResult());
    b.addRun(sampleOptions(), sampleResult());
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
}

// ---- golden comparison (check_golden self-test) -------------------------

TEST(Golden, IdenticalReportsPass)
{
    MetricsRegistry reg("unit");
    reg.addRun(sampleOptions(), sampleResult());
    Json a = reg.toJson();
    std::string err;
    Json b = Json::parse(a.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(compareReports(a, b).empty());
}

TEST(Golden, PerturbedCounterFailsWithNamedPath)
{
    MetricsRegistry reg("unit");
    reg.addRun(sampleOptions(), sampleResult());
    Json golden = reg.toJson();

    driver::RunResult r = sampleResult();
    r.phaseCounters[0].instructions += 1; // drift one counter
    MetricsRegistry reg2("unit");
    reg2.addRun(sampleOptions(), r);
    Json fresh = reg2.toJson();

    std::vector<Drift> drifts = compareReports(golden, fresh);
    ASSERT_FALSE(drifts.empty());
    // The drifted paths must name the perturbed counter (totals and
    // phases/interp both see it).
    bool sawPhase = false;
    for (const Drift &d : drifts) {
        EXPECT_NE(d.path.find("richards/PyPy*"), std::string::npos)
            << d.path;
        if (d.path ==
            "runs[0:richards/PyPy*].metrics.phases.interp.instructions")
            sawPhase = true;
    }
    EXPECT_TRUE(sawPhase);

    std::string diff = formatDriftDiff("golden.json", "fresh.json", drifts);
    EXPECT_NE(diff.find("--- golden.json"), std::string::npos);
    EXPECT_NE(diff.find("+++ fresh.json"), std::string::npos);
    EXPECT_NE(diff.find("instructions = 1000"), std::string::npos);
    EXPECT_NE(diff.find("instructions = 1001"), std::string::npos);
}

TEST(Golden, IntegerCountersAreExact)
{
    std::string gold = "{\"a\": 18446744073709551615}";
    std::string fresh = "{\"a\": 18446744073709551614}";
    Json g = Json::parse(gold), f = Json::parse(fresh);
    // One ULP of drift at a magnitude where doubles cannot see it.
    EXPECT_EQ(compareReports(g, f).size(), 1u);
    EXPECT_TRUE(compareReports(g, g).empty());
}

TEST(Golden, FloatsCompareUnderRelativeTolerance)
{
    Json g = Json::parse("{\"ipc\": 1.5}");
    Json fOk = Json::parse("{\"ipc\": 1.5000001}");
    Json fBad = Json::parse("{\"ipc\": 1.52}");
    GoldenOptions opts;
    opts.rtol = 1e-6;
    EXPECT_TRUE(compareReports(g, fOk, opts).empty());
    ASSERT_EQ(compareReports(g, fBad, opts).size(), 1u);
    EXPECT_NE(compareReports(g, fBad, opts)[0].note.find("rel err"),
              std::string::npos);
}

TEST(Golden, MissingAndExtraKeysAreDrifts)
{
    Json g = Json::parse("{\"a\": 1, \"b\": 2}");
    Json f = Json::parse("{\"a\": 1, \"c\": 3}");
    std::vector<Drift> drifts = compareReports(g, f);
    ASSERT_EQ(drifts.size(), 2u);
    EXPECT_EQ(drifts[0].path, "b");
    EXPECT_EQ(drifts[0].fresh, "<missing>");
    EXPECT_EQ(drifts[1].path, "c");
    EXPECT_EQ(drifts[1].golden, "<missing>");
}

TEST(Golden, SchemaVersionMismatchIsDrift)
{
    Json g = Json::parse("{\"schema_version\": 1}");
    Json f = Json::parse("{\"schema_version\": 2}");
    ASSERT_EQ(compareReports(g, f).size(), 1u);
    EXPECT_EQ(compareReports(g, f)[0].path, "schema_version");
}

// ---- loadReport hardening --------------------------------------------
//
// The golden gate and the bench guard both trust loadReport to turn a
// damaged on-disk report (crashed generator, truncated CI artifact,
// stray shell output) into a one-line error instead of a vacuous pass.

namespace {

/** Write @p text to a unique temp file and return its path. */
std::string
tempReport(const char *tag, const std::string &text)
{
    std::string path =
        ::testing::TempDir() + "xlvm_load_report_" + tag + ".json";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(text.data(), std::streamsize(text.size()));
    f.close();
    return path;
}

} // namespace

TEST(LoadReport, MissingFileIsAnError)
{
    Json doc;
    std::string err;
    EXPECT_FALSE(loadReport("/nonexistent/xlvm_no_such.json", &doc, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(LoadReport, EmptyFileIsAnError)
{
    Json doc;
    std::string err;
    EXPECT_FALSE(loadReport(tempReport("empty", ""), &doc, &err));
    EXPECT_NE(err.find("empty report"), std::string::npos) << err;
    err.clear();
    EXPECT_FALSE(loadReport(tempReport("blank", " \n\t\n"), &doc, &err));
    EXPECT_NE(err.find("empty report"), std::string::npos) << err;
}

TEST(LoadReport, TruncatedJsonIsAnError)
{
    Json doc;
    std::string err;
    EXPECT_FALSE(loadReport(
        tempReport("trunc", "{\"schema_version\": 7, \"runs\": ["), &doc,
        &err));
    EXPECT_FALSE(err.empty());
}

TEST(LoadReport, TrailingGarbageIsAnError)
{
    Json doc;
    std::string err;
    EXPECT_FALSE(
        loadReport(tempReport("garbage", "{}\nsegfault at 0x0"), &doc, &err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(LoadReport, NonObjectTopLevelIsAnError)
{
    // "null"/"42"/"[]" parse cleanly but comparing against them would
    // vacuously succeed — they must be rejected up front.
    Json doc;
    std::string err;
    for (const char *bad : {"null", "42", "[1, 2]", "\"oops\""}) {
        err.clear();
        EXPECT_FALSE(loadReport(tempReport("nonobj", bad), &doc, &err))
            << bad;
        EXPECT_NE(err.find("not a JSON report object"), std::string::npos)
            << bad << ": " << err;
    }
}

TEST(LoadReport, WellFormedReportLoads)
{
    Json doc;
    std::string err;
    ASSERT_TRUE(loadReport(
        tempReport("ok", "{\"schema_version\": 7, \"runs\": []}"), &doc,
        &err))
        << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.get("schema_version")->asUInt(), 7u);
}
