#include <gtest/gtest.h>

#include "jit/backend.h"
#include "jit/eval.h"
#include "jit/ir.h"
#include "jit/recorder.h"

namespace xlvm {
namespace jit {
namespace {

TEST(IrOps, CategoriesMatchPaperTaxonomy)
{
    EXPECT_EQ(irCategory(IrOp::GetfieldGc), IrCategory::MemOp);
    EXPECT_EQ(irCategory(IrOp::SetfieldGc), IrCategory::MemOp);
    EXPECT_EQ(irCategory(IrOp::GuardClass), IrCategory::Guard);
    EXPECT_EQ(irCategory(IrOp::Call), IrCategory::CallOverhead);
    EXPECT_EQ(irCategory(IrOp::CallAssembler), IrCategory::CallOverhead);
    EXPECT_EQ(irCategory(IrOp::IntAddOvf), IrCategory::Int);
    EXPECT_EQ(irCategory(IrOp::FloatMul), IrCategory::Float);
    EXPECT_EQ(irCategory(IrOp::NewWithVtable), IrCategory::New);
    EXPECT_EQ(irCategory(IrOp::Strgetitem), IrCategory::Str);
    EXPECT_EQ(irCategory(IrOp::PtrEq), IrCategory::Ptr);
    EXPECT_EQ(irCategory(IrOp::Jump), IrCategory::Ctrl);
}

TEST(IrOps, NamesMatchRPythonVocabulary)
{
    EXPECT_STREQ(irOpName(IrOp::GetfieldGc), "getfield_gc");
    EXPECT_STREQ(irOpName(IrOp::GuardNoOverflow), "guard_no_overflow");
    EXPECT_STREQ(irOpName(IrOp::CallAssembler), "call_assembler");
    EXPECT_STREQ(irOpName(IrOp::DebugMergePoint), "debug_merge_point");
}

TEST(IrOps, PurityClassification)
{
    EXPECT_TRUE(isPure(IrOp::IntAdd));
    EXPECT_TRUE(isPure(IrOp::FloatMul));
    EXPECT_TRUE(isPure(IrOp::PtrEq));
    EXPECT_TRUE(isPure(IrOp::CallPure));
    EXPECT_FALSE(isPure(IrOp::Call));
    EXPECT_FALSE(isPure(IrOp::SetfieldGc));
    EXPECT_FALSE(isPure(IrOp::GuardTrue));
    EXPECT_FALSE(isPure(IrOp::IntFloordiv)); // may trap
}

TEST(Eval, IntOps)
{
    RtVal out;
    EXPECT_TRUE(evalPure(IrOp::IntAdd, RtVal::fromInt(2),
                         RtVal::fromInt(3), &out));
    EXPECT_EQ(out.i, 5);
    EXPECT_TRUE(evalPure(IrOp::IntLt, RtVal::fromInt(2),
                         RtVal::fromInt(3), &out));
    EXPECT_EQ(out.i, 1);
}

TEST(Eval, OverflowRefusesToFold)
{
    RtVal out;
    EXPECT_FALSE(evalPure(IrOp::IntAddOvf, RtVal::fromInt(INT64_MAX),
                          RtVal::fromInt(1), &out));
    EXPECT_TRUE(evalPure(IrOp::IntAddOvf, RtVal::fromInt(1),
                         RtVal::fromInt(2), &out));
    EXPECT_EQ(out.i, 3);
    EXPECT_FALSE(evalPure(IrOp::IntMulOvf, RtVal::fromInt(INT64_MAX / 2),
                          RtVal::fromInt(3), &out));
}

TEST(Eval, FloatOps)
{
    RtVal out;
    EXPECT_TRUE(evalPure(IrOp::FloatMul, RtVal::fromFloat(2.5),
                         RtVal::fromFloat(4.0), &out));
    EXPECT_DOUBLE_EQ(out.f, 10.0);
    EXPECT_FALSE(evalPure(IrOp::FloatTruediv, RtVal::fromFloat(1.0),
                          RtVal::fromFloat(0.0), &out));
    EXPECT_TRUE(evalPure(IrOp::CastIntToFloat, RtVal::fromInt(3),
                         RtVal(), &out));
    EXPECT_DOUBLE_EQ(out.f, 3.0);
}

TEST(Trace, ConstDeduplication)
{
    Trace t;
    int32_t a = t.addConst(RtVal::fromInt(42));
    int32_t b = t.addConst(RtVal::fromInt(42));
    int32_t c = t.addConst(RtVal::fromInt(43));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_TRUE(isConstRef(a));
    EXPECT_EQ(t.constAt(a).i, 42);
}

TEST(Trace, RefEncodingRanges)
{
    EXPECT_TRUE(isConstRef(makeConstRef(0)));
    EXPECT_TRUE(isConstRef(makeConstRef(1000)));
    EXPECT_FALSE(isConstRef(0));
    EXPECT_FALSE(isConstRef(kNoArg));
    EXPECT_EQ(constIndex(makeConstRef(7)), 7);
}

// --------------------------------------------------------------- Recorder

Snapshot
emptySnapshot()
{
    Snapshot s;
    FrameSnapshot f;
    f.code = nullptr;
    f.pc = 0;
    s.frames.push_back(f);
    return s;
}

TEST(Recorder, RecordsSimpleLoop)
{
    Recorder rec(nullptr, 0, false);
    int dummy1, dummy2;
    int32_t in0 = rec.addInputRef(&dummy1);
    int32_t in1 = rec.addInputRef(&dummy2);
    ASSERT_TRUE(rec.atMergePoint(7, emptySnapshot));

    rec.guardClass(in0, 5);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, 0);
    int32_t sum = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    (void)in1;
    rec.closeLoop({in0, in1});
    EXPECT_TRUE(rec.closed());

    Trace t = rec.take();
    EXPECT_EQ(t.numInputs, 2u);
    EXPECT_GE(t.ops.size(), 6u); // label, dmp, guard, getfield, add, jump
    EXPECT_EQ(t.ops.front().op, IrOp::Label);
    EXPECT_EQ(t.ops.back().op, IrOp::Jump);
    EXPECT_GE(sum, 0);
    EXPECT_FALSE(t.dump().empty());
}

TEST(Recorder, ConstantFoldingAtRecordTime)
{
    Recorder rec(nullptr, 0, false);
    ASSERT_TRUE(rec.atMergePoint(0, emptySnapshot));
    int32_t r = rec.emit(IrOp::IntAdd, rec.constInt(2), rec.constInt(3));
    EXPECT_TRUE(isConstRef(r));
    EXPECT_EQ(rec.constVal(r).i, 5);
    // No IntAdd op was recorded.
    for (const ResOp &op : rec.trace().ops)
        EXPECT_NE(op.op, IrOp::IntAdd);
}

TEST(Recorder, RedundantGuardClassElided)
{
    Recorder rec(nullptr, 0, false);
    int dummy;
    int32_t in0 = rec.addInputRef(&dummy);
    ASSERT_TRUE(rec.atMergePoint(0, emptySnapshot));
    rec.guardClass(in0, 5);
    rec.guardClass(in0, 5); // should be elided
    int guards = 0;
    for (const ResOp &op : rec.trace().ops) {
        if (op.op == IrOp::GuardClass)
            ++guards;
    }
    EXPECT_EQ(guards, 1);
}

TEST(Recorder, GuardsOnConstantsElided)
{
    Recorder rec(nullptr, 0, false);
    ASSERT_TRUE(rec.atMergePoint(0, emptySnapshot));
    rec.guardTrue(rec.constInt(1));
    rec.guardClass(rec.constRef(&rec), 9);
    int guards = 0;
    for (const ResOp &op : rec.trace().ops) {
        if (isGuard(op.op))
            ++guards;
    }
    EXPECT_EQ(guards, 0);
}

TEST(Recorder, SnapshotSharedWithinBytecode)
{
    Recorder rec(nullptr, 0, false);
    int dummy;
    int32_t in0 = rec.addInputRef(&dummy);
    int calls = 0;
    auto snap = [&]() {
        ++calls;
        return emptySnapshot();
    };
    ASSERT_TRUE(rec.atMergePoint(0, snap));
    rec.guardTrue(in0);
    rec.guardNonnull(in0);
    EXPECT_EQ(calls, 1); // captured lazily, shared by both guards
    ASSERT_TRUE(rec.atMergePoint(1, snap));
    rec.guardTrue(rec.emit(IrOp::IntIsTrue, in0));
    EXPECT_EQ(calls, 2); // new bytecode, new snapshot
}

TEST(Recorder, NewWithVtableTracksClass)
{
    Recorder rec(nullptr, 0, false);
    ASSERT_TRUE(rec.atMergePoint(0, emptySnapshot));
    int32_t obj = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg, 17);
    rec.guardClass(obj, 17); // must be elided: class is known
    int guards = 0;
    for (const ResOp &op : rec.trace().ops) {
        if (op.op == IrOp::GuardClass)
            ++guards;
    }
    EXPECT_EQ(guards, 0);
}

TEST(Recorder, AbortsOnLengthLimit)
{
    RecorderLimits lims;
    lims.maxOps = 10;
    Recorder rec(nullptr, 0, false, lims);
    int dummy;
    int32_t in0 = rec.addInputRef(&dummy);
    bool ok = true;
    for (int i = 0; i < 20 && ok; ++i) {
        ok = rec.atMergePoint(0, emptySnapshot);
        if (ok)
            rec.emit(IrOp::IntAdd, in0 >= 0 ? rec.constInt(1) : kNoArg,
                     rec.constInt(2));
    }
    EXPECT_FALSE(ok);
}

TEST(Recorder, RefEncodingUnknownBecomesConst)
{
    Recorder rec(nullptr, 0, false);
    int known, unknown;
    int32_t in0 = rec.addInputRef(&known);
    EXPECT_EQ(rec.refEncoding(&known), in0);
    int32_t c = rec.refEncoding(&unknown);
    EXPECT_TRUE(isConstRef(c));
    EXPECT_EQ(rec.constVal(c).r, &unknown);
}

TEST(Recorder, LiveRefsEnumerated)
{
    Recorder rec(nullptr, 0, false);
    int a, b;
    rec.addInputRef(&a);
    ASSERT_TRUE(rec.atMergePoint(0, emptySnapshot));
    rec.constRef(&b);
    std::vector<void *> seen;
    rec.forEachLiveRef([&](void *p) { seen.push_back(p); });
    EXPECT_NE(std::find(seen.begin(), seen.end(), &a), seen.end());
    EXPECT_NE(std::find(seen.begin(), seen.end(), &b), seen.end());
}

// --------------------------------------------------------------- Backend

TEST(Backend, LoweringCountsMatchFigure9Shape)
{
    // call_assembler is the most expensive; calls > 15; common memory
    // ops are 1-2 instructions.
    EXPECT_GT(loweredInstCount(IrOp::CallAssembler), 30u);
    EXPECT_GE(loweredInstCount(IrOp::Call), 15u);
    EXPECT_GT(loweredInstCount(IrOp::CallMayForce),
              loweredInstCount(IrOp::Call));
    EXPECT_LE(loweredInstCount(IrOp::GetfieldGc), 2u);
    EXPECT_LE(loweredInstCount(IrOp::IntAdd), 2u);
    EXPECT_GT(loweredInstCount(IrOp::NewWithVtable), 4u);
    EXPECT_EQ(loweredInstCount(IrOp::DebugMergePoint), 0u);
}

TEST(Backend, CompileAssignsCodeAndNodeIds)
{
    sim::CodeSpace cs;
    Backend backend(cs);

    Recorder rec(nullptr, 0, false);
    int dummy;
    int32_t in0 = rec.addInputRef(&dummy);
    EXPECT_TRUE(rec.atMergePoint(0, emptySnapshot));
    rec.guardClass(in0, 3);
    rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0, kNoArg, kNoArg, 0);
    rec.closeLoop({in0});
    Trace t = rec.take();
    t.id = 0;
    backend.compile(t);

    EXPECT_GT(t.codePc, 0u);
    EXPECT_GT(t.codeInsts, 0u);
    EXPECT_EQ(backend.opOffsets(0).size(), t.ops.size());
    // Countable nodes exclude label + debug_merge_point.
    EXPECT_EQ(backend.totalIrNodesCompiled(), t.countIrNodes());
    for (const auto &m : backend.nodeMeta())
        EXPECT_EQ(m.traceId, 0u);
}

TEST(Backend, SequentialTracesGetDisjointCode)
{
    sim::CodeSpace cs;
    Backend backend(cs);
    uint64_t prev_end = 0;
    for (uint32_t id = 0; id < 3; ++id) {
        Recorder rec(nullptr, 0, false);
        int dummy;
        int32_t in0 = rec.addInputRef(&dummy);
        EXPECT_TRUE(rec.atMergePoint(0, emptySnapshot));
        rec.emit(IrOp::IntAdd, in0 * 0 + rec.constInt(1), rec.constInt(2));
        rec.guardNonnull(in0);
        rec.closeLoop({in0});
        Trace t = rec.take();
        t.id = id;
        backend.compile(t);
        EXPECT_GE(t.codePc, prev_end);
        prev_end = t.codePc + t.codeInsts * 4;
    }
}

} // namespace
} // namespace jit
} // namespace xlvm
