#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "rt/aot_registry.h"
#include "rt/rbigint.h"
#include "rt/rbuilder.h"
#include "rt/rdict.h"
#include "rt/rstr.h"

namespace xlvm {
namespace rt {
namespace {

// ---------------------------------------------------------------- RBigInt

TEST(RBigInt, Int64RoundTrip)
{
    for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(12345),
                      int64_t(-987654321), INT64_MAX, INT64_MIN}) {
        RBigInt b = RBigInt::fromInt64(v);
        EXPECT_TRUE(b.fitsInt64());
        EXPECT_EQ(b.toInt64(), v);
    }
}

TEST(RBigInt, DecimalRoundTrip)
{
    const char *cases[] = {"0", "1", "-1", "123456789012345678901234567890",
                           "-99999999999999999999999999"};
    for (const char *s : cases) {
        RBigInt b = RBigInt::fromDecimal(s);
        EXPECT_EQ(b.toDecimal(), s);
    }
}

TEST(RBigInt, AddSubAgainstInt128)
{
    Rng rng(101);
    for (int i = 0; i < 2000; ++i) {
        // Keep operands below 2^62 so sums/differences fit in int64.
        int64_t a = int64_t(rng.next()) >> (2 + rng.nextBelow(32));
        int64_t b = int64_t(rng.next()) >> (2 + rng.nextBelow(32));
        RBigInt ba = RBigInt::fromInt64(a);
        RBigInt bb = RBigInt::fromInt64(b);
        EXPECT_EQ(RBigInt::add(ba, bb).toInt64(), a + b)
            << a << " + " << b;
        EXPECT_EQ(RBigInt::sub(ba, bb).toInt64(), a - b)
            << a << " - " << b;
    }
}

TEST(RBigInt, MulAgainstInt128)
{
    Rng rng(102);
    for (int i = 0; i < 2000; ++i) {
        int64_t a = int64_t(rng.next() >> 33) - (1ll << 30);
        int64_t b = int64_t(rng.next() >> 33) - (1ll << 30);
        __int128 p = __int128(a) * b;
        RBigInt bp = RBigInt::mul(RBigInt::fromInt64(a),
                                  RBigInt::fromInt64(b));
        // p fits in 64 bits here (31-bit operands).
        EXPECT_TRUE(bp.fitsInt64());
        EXPECT_EQ(__int128(bp.toInt64()), p) << a << " * " << b;
    }
}

TEST(RBigInt, DivmodFloorSemanticsSmall)
{
    // Python floor-division semantics across sign combinations.
    struct Case
    {
        int64_t a, b, q, r;
    };
    Case cases[] = {
        {7, 3, 2, 1},   {-7, 3, -3, 2},  {7, -3, -3, -2},
        {-7, -3, 2, -1}, {6, 3, 2, 0},   {-6, 3, -2, 0},
        {0, 5, 0, 0},    {1, 100, 0, 1}, {-1, 100, -1, 99},
    };
    for (const Case &c : cases) {
        RBigInt q, r;
        RBigInt::divmod(RBigInt::fromInt64(c.a), RBigInt::fromInt64(c.b),
                        q, r);
        EXPECT_EQ(q.toInt64(), c.q) << c.a << " // " << c.b;
        EXPECT_EQ(r.toInt64(), c.r) << c.a << " % " << c.b;
    }
}

TEST(RBigInt, DivmodIdentityRandomLarge)
{
    Rng rng(103);
    for (int i = 0; i < 500; ++i) {
        // Build random multi-digit operands from decimal strings.
        std::string as, bs;
        int alen = 1 + rng.nextBelow(40);
        int blen = 1 + rng.nextBelow(20);
        for (int k = 0; k < alen; ++k)
            as.push_back('0' + rng.nextBelow(10));
        for (int k = 0; k < blen; ++k)
            bs.push_back('0' + rng.nextBelow(10));
        RBigInt a = RBigInt::fromDecimal(as);
        RBigInt b = RBigInt::fromDecimal(bs);
        if (b.isZero())
            continue;
        if (rng.next() & 1)
            a = a.neg();
        if (rng.next() & 1)
            b = b.neg();
        RBigInt q, r;
        RBigInt::divmod(a, b, q, r);
        // a == q*b + r
        RBigInt recon = RBigInt::add(RBigInt::mul(q, b), r);
        EXPECT_EQ(RBigInt::compare(recon, a), 0)
            << as << " / " << bs << " q=" << q.toDecimal()
            << " r=" << r.toDecimal();
        // 0 <= |r| < |b| and r has b's sign (or zero)
        EXPECT_LT(RBigInt::compare(r.abs(), b.abs()), 0);
        if (!r.isZero()) {
            EXPECT_EQ(r.sign(), b.sign());
        }
    }
}

TEST(RBigInt, ShiftsMatchMultiplication)
{
    RBigInt x = RBigInt::fromDecimal("123456789123456789");
    RBigInt shifted = x.lshift(37);
    RBigInt mult = RBigInt::mul(x, RBigInt::pow(RBigInt::fromInt64(2), 37));
    EXPECT_EQ(RBigInt::compare(shifted, mult), 0);
    EXPECT_EQ(RBigInt::compare(shifted.rshift(37), x), 0);
}

TEST(RBigInt, PowMatchesRepeatedMul)
{
    RBigInt b = RBigInt::fromInt64(7);
    RBigInt acc = RBigInt::fromInt64(1);
    for (int e = 0; e < 30; ++e) {
        EXPECT_EQ(RBigInt::compare(RBigInt::pow(b, e), acc), 0) << e;
        acc = RBigInt::mul(acc, b);
    }
}

TEST(RBigInt, CompareOrdering)
{
    RBigInt neg = RBigInt::fromInt64(-5);
    RBigInt zero;
    RBigInt pos = RBigInt::fromInt64(3);
    RBigInt big = RBigInt::fromDecimal("10000000000000000000000");
    EXPECT_LT(RBigInt::compare(neg, zero), 0);
    EXPECT_LT(RBigInt::compare(zero, pos), 0);
    EXPECT_LT(RBigInt::compare(pos, big), 0);
    EXPECT_GT(RBigInt::compare(big, neg), 0);
    EXPECT_EQ(RBigInt::compare(pos, pos), 0);
}

TEST(RBigInt, CostUnitsScaleWithSize)
{
    RBigInt small = RBigInt::fromInt64(42);
    RBigInt big = RBigInt::pow(RBigInt::fromInt64(10), 500);
    EXPECT_GT(RBigInt::mulCostUnits(big, big),
              100 * RBigInt::mulCostUnits(small, small));
    EXPECT_GT(big.toDecimalCostUnits(), small.toDecimalCostUnits());
}

// ---------------------------------------------------------------- RStr

TEST(RStr, FindChar)
{
    uint64_t c = 0;
    EXPECT_EQ(findChar("hello", 'l', 0, &c), 2);
    EXPECT_EQ(findChar("hello", 'l', 3, &c), 3);
    EXPECT_EQ(findChar("hello", 'z', 0, &c), -1);
    EXPECT_GT(c, 0u);
}

TEST(RStr, FindAndReplace)
{
    uint64_t c = 0;
    EXPECT_EQ(find("abcabc", "bc", 0, &c), 1);
    EXPECT_EQ(find("abcabc", "bc", 2, &c), 4);
    EXPECT_EQ(find("abcabc", "zz", 0, &c), -1);
    EXPECT_EQ(replace("a-b-c", "-", "+", &c), "a+b+c");
    EXPECT_EQ(replace("aaa", "aa", "b", &c), "ba");
    EXPECT_EQ(replace("abc", "", "x", &c), "abc");
}

TEST(RStr, JoinSplit)
{
    uint64_t c = 0;
    EXPECT_EQ(join(", ", {"a", "b", "c"}, &c), "a, b, c");
    EXPECT_EQ(join("", {}, &c), "");
    auto parts = split("a,b,,c", ',', &c);
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
}

TEST(RStr, HashStableAndSpread)
{
    uint64_t c = 0;
    EXPECT_EQ(strHash("hello", &c), strHash("hello", &c));
    EXPECT_NE(strHash("hello", &c), strHash("hellp", &c));
    EXPECT_NE(strHash("", &c), 0u); // never returns 0
}

TEST(RStr, IntConversions)
{
    uint64_t c = 0;
    EXPECT_EQ(int2dec(-12345, &c), "-12345");
    int64_t out = 0;
    EXPECT_TRUE(stringToInt("  42 ", &out, &c));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(stringToInt("-7", &out, &c));
    EXPECT_EQ(out, -7);
    EXPECT_FALSE(stringToInt("12x", &out, &c));
    EXPECT_FALSE(stringToInt("", &out, &c));
}

TEST(RStr, CaseAndStrip)
{
    uint64_t c = 0;
    EXPECT_EQ(toLower("HeLLo", &c), "hello");
    EXPECT_EQ(toUpper("HeLLo", &c), "HELLO");
    EXPECT_EQ(strip("  hi \n", &c), "hi");
}

TEST(RStr, CountStartsEnds)
{
    uint64_t c = 0;
    EXPECT_EQ(count("abababa", "aba", &c), 2);
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("hello", "hello!"));
    EXPECT_TRUE(endsWith("hello", "llo"));
}

TEST(RStr, TranslateAndJsonEscape)
{
    uint64_t c = 0;
    std::string table;
    for (int i = 0; i < 256; ++i)
        table.push_back(char(i));
    table['a'] = 'A';
    EXPECT_EQ(translate("banana", table, &c), "bAnAnA");
    EXPECT_EQ(jsonEscape("a\"b\n", &c), "\"a\\\"b\\n\"");
}

// ---------------------------------------------------------------- RDict

struct IntTraits
{
    static bool equal(int a, int b) { return a == b; }
};

using IntDict = ROrderedDict<int, int, IntTraits>;

uint64_t
ihash(int k)
{
    return uint64_t(k) * 0x9e3779b97f4a7c15ull;
}

TEST(RDict, SetGetBasic)
{
    IntDict d;
    EXPECT_TRUE(d.set(1, ihash(1), 100));
    EXPECT_FALSE(d.set(1, ihash(1), 200)); // update
    ASSERT_NE(d.get(1, ihash(1)), nullptr);
    EXPECT_EQ(*d.get(1, ihash(1)), 200);
    EXPECT_EQ(d.get(2, ihash(2)), nullptr);
    EXPECT_EQ(d.size(), 1u);
}

TEST(RDict, GrowthKeepsAllKeys)
{
    IntDict d;
    for (int i = 0; i < 1000; ++i)
        d.set(i, ihash(i), i * 3);
    EXPECT_EQ(d.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        auto *v = d.get(i, ihash(i));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, i * 3);
    }
    EXPECT_GT(d.slotCount(), 1000u);
}

TEST(RDict, InsertionOrderPreserved)
{
    IntDict d;
    int keys[] = {5, 3, 9, 1};
    for (int k : keys)
        d.set(k, ihash(k), k);
    std::vector<int> seen;
    for (const auto &e : d.rawEntries()) {
        if (e.live)
            seen.push_back(e.key);
    }
    EXPECT_EQ(seen, (std::vector<int>{5, 3, 9, 1}));
}

TEST(RDict, EraseAndCompaction)
{
    IntDict d;
    for (int i = 0; i < 100; ++i)
        d.set(i, ihash(i), i);
    for (int i = 0; i < 80; ++i)
        EXPECT_TRUE(d.erase(i, ihash(i)));
    EXPECT_FALSE(d.erase(5, ihash(5)));
    EXPECT_EQ(d.size(), 20u);
    for (int i = 80; i < 100; ++i)
        ASSERT_NE(d.get(i, ihash(i)), nullptr) << i;
    // Compaction kicked in: dense entries shrank.
    EXPECT_LE(d.rawEntries().size(), 40u);
}

TEST(RDict, VersionBumpsOnMutation)
{
    IntDict d;
    uint64_t v0 = d.version();
    d.set(1, ihash(1), 1);
    uint64_t v1 = d.version();
    EXPECT_GT(v1, v0);
    d.set(1, ihash(1), 2); // value update: no new key
    EXPECT_EQ(d.version(), v1);
    d.erase(1, ihash(1));
    EXPECT_GT(d.version(), v1);
}

TEST(RDict, LookupCostReported)
{
    IntDict d;
    LookupCost cost;
    d.set(7, ihash(7), 7);
    d.lookup(7, ihash(7), &cost);
    EXPECT_GE(cost.probes, 1u);
    EXPECT_TRUE(cost.keyCompared);
    d.lookup(1234, ihash(1234), &cost);
    EXPECT_GE(cost.probes, 1u);
}

TEST(RDict, CollisionsResolved)
{
    // Same hash for all keys: forces probe chains.
    IntDict d;
    for (int i = 0; i < 50; ++i)
        d.set(i, 42, i * 2);
    for (int i = 0; i < 50; ++i) {
        auto *v = d.get(i, 42);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i * 2);
    }
    EXPECT_EQ(d.get(99, 42), nullptr);
}

// ---------------------------------------------------------------- RBuilder

TEST(RBuilder, AppendsAndCosts)
{
    RBuilder b;
    uint64_t c1 = b.append("hello ");
    uint64_t c2 = b.append("world");
    b.appendChar('!');
    EXPECT_EQ(b.view(), "hello world!");
    EXPECT_GT(c1, 0u);
    EXPECT_GT(c2, 0u);
    std::string s = b.take();
    EXPECT_EQ(s, "hello world!");
}

// ---------------------------------------------------------------- Registry

TEST(AotRegistry, AllFunctionsDefined)
{
    const AotRegistry &reg = AotRegistry::instance();
    EXPECT_EQ(reg.size(), size_t(kAotNumFunctions));
    for (uint32_t i = 0; i < kAotNumFunctions; ++i) {
        EXPECT_FALSE(reg.fn(i).name.empty()) << i;
        EXPECT_NE(reg.fn(i).codePc, 0u);
    }
}

TEST(AotRegistry, TableIIINamesPresent)
{
    const AotRegistry &reg = AotRegistry::instance();
    EXPECT_EQ(reg.fn(kAotDictLookup).name,
              "rordereddict.ll_call_lookup_function");
    EXPECT_EQ(aotSourceTag(reg.fn(kAotDictLookup).source), 'R');
    EXPECT_EQ(reg.fn(kAotCPow).name, "pow");
    EXPECT_EQ(aotSourceTag(reg.fn(kAotCPow).source), 'C');
    EXPECT_EQ(aotSourceTag(reg.fn(kAotListSetslice).source), 'I');
    EXPECT_EQ(aotSourceTag(reg.fn(kAotJsonEscape).source), 'M');
    EXPECT_EQ(aotSourceTag(reg.fn(kAotBigIntAdd).source), 'L');
}

TEST(AotRegistry, DistinctCodeAddresses)
{
    const AotRegistry &reg = AotRegistry::instance();
    for (uint32_t i = 1; i < kAotNumFunctions; ++i)
        EXPECT_NE(reg.fn(i).codePc, reg.fn(i - 1).codePc);
}

} // namespace
} // namespace rt
} // namespace xlvm
