#include <gtest/gtest.h>

#include "sim/core.h"
#include "sim/emitter.h"
#include "xlayer/annot.h"
#include "xlayer/aot_profiler.h"
#include "xlayer/bus.h"
#include "xlayer/event_profiler.h"
#include "xlayer/irnode_profiler.h"
#include "xlayer/phase_profiler.h"
#include "xlayer/work_profiler.h"

namespace xlvm {
namespace xlayer {
namespace {

struct Fixture
{
    sim::Core core;
    AnnotationBus bus{core};
};

TEST(Bus, FansOutToAllListeners)
{
    Fixture f;
    EventProfiler a(f.bus), b(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kDeopt, 1);
    EXPECT_EQ(a.deopts, 1u);
    EXPECT_EQ(b.deopts, 1u);
}

TEST(Bus, RemoveListenerStopsDelivery)
{
    Fixture f;
    auto *p = new EventProfiler(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kDeopt, 1);
    EXPECT_EQ(p->deopts, 1u);
    delete p; // unsubscribes
    sim::BlockEmitter e2(f.core, 0x400000);
    e2.annot(kDeopt, 2); // must not crash
}

TEST(PhaseProfiler, BucketsFollowPhaseStack)
{
    Fixture f;
    PhaseProfiler phases(f.bus);
    EXPECT_EQ(phases.currentPhase(), Phase::Interpreter);

    sim::BlockEmitter e(f.core, 0x400000);
    e.alu(10); // interpreter
    e.annot(kPhaseEnter, uint32_t(Phase::Jit));
    e.alu(20); // jit
    e.annot(kPhaseEnter, uint32_t(Phase::Gc));
    e.alu(5); // gc inside jit
    e.annot(kPhaseExit, uint32_t(Phase::Gc));
    e.alu(1); // back to jit
    e.annot(kPhaseExit, uint32_t(Phase::Jit));
    e.alu(2); // interpreter again

    EXPECT_EQ(phases.currentPhase(), Phase::Interpreter);
    EXPECT_EQ(phases.phaseCounters(Phase::Interpreter).instructions, 12u);
    EXPECT_EQ(phases.phaseCounters(Phase::Jit).instructions, 21u);
    EXPECT_EQ(phases.phaseCounters(Phase::Gc).instructions, 5u);
}

TEST(PhaseProfiler, SharesSumToOne)
{
    Fixture f;
    PhaseProfiler phases(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    e.alu(10);
    e.annot(kPhaseEnter, uint32_t(Phase::Jit));
    e.alu(30);
    e.annot(kPhaseExit, uint32_t(Phase::Jit));
    auto shares = phases.phaseCycleShares();
    double sum = 0;
    for (double s : shares)
        sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(shares[uint32_t(Phase::Jit)],
              shares[uint32_t(Phase::Interpreter)]);
}

TEST(PhaseProfiler, TimelineBinsCoverRun)
{
    Fixture f;
    PhaseProfiler phases(f.bus, 100);
    sim::BlockEmitter e(f.core, 0x400000);
    for (int i = 0; i < 50; ++i) {
        e.alu(10);
        e.annot(kAppEvent, 0); // gives the profiler a chance to bin
    }
    EXPECT_GE(phases.timeline().size(), 4u);
    EXPECT_EQ(phases.timeline()[0].instrEnd, 100u);
}

TEST(WorkRate, CountsDispatchQuanta)
{
    Fixture f;
    WorkRateProfiler work(f.bus, 50);
    sim::BlockEmitter e(f.core, 0x400000);
    for (int i = 0; i < 30; ++i) {
        e.annot(kDispatch, i % 3);
        e.alu(10);
    }
    work.finalize();
    EXPECT_EQ(work.totalWork(), 30u);
    ASSERT_GE(work.opcodeHistogram().size(), 3u);
    EXPECT_EQ(work.opcodeHistogram()[0], 10u);
    EXPECT_FALSE(work.samples().empty());
    EXPECT_EQ(work.samples().back().work, 30u);
}

TEST(WorkRate, BreakEvenFound)
{
    // Build a synthetic curve: slow first (0.5 work/instr below baseline
    // of 1.0), then fast.
    std::vector<WorkSample> curve;
    curve.push_back({100, 0, 50});   // behind
    curve.push_back({200, 0, 150});  // behind (needs 200)
    curve.push_back({300, 0, 320});  // ahead
    EXPECT_EQ(breakEvenInstructions(curve, 1.0), 300u);
}

TEST(WorkRate, BreakEvenNeverReached)
{
    std::vector<WorkSample> curve = {{100, 0, 10}, {200, 0, 20}};
    EXPECT_EQ(breakEvenInstructions(curve, 1.0), UINT64_MAX);
}

TEST(WorkRate, BreakEvenImmediate)
{
    std::vector<WorkSample> curve = {{100, 0, 200}};
    EXPECT_EQ(breakEvenInstructions(curve, 1.0), 100u);
}

TEST(AotProfiler, AttributesOutermostEntry)
{
    Fixture f;
    AotCallProfiler aot(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);

    e.annot(kAotEnter, 5);
    e.alu(100);
    e.annot(kAotEnter, 9); // nested call
    e.alu(50);
    e.annot(kAotExit, 9);
    e.annot(kAotExit, 5);

    auto fns = aot.significantFunctions();
    ASSERT_EQ(fns.size(), 1u); // nested call folded into entry point
    EXPECT_EQ(fns[0].fnId, 5u);
    EXPECT_EQ(fns[0].calls, 1u);
    EXPECT_GT(fns[0].cycles, 0.0);
}

TEST(AotProfiler, MinShareFilters)
{
    Fixture f;
    AotCallProfiler aot(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kAotEnter, 1);
    e.alu(1000);
    e.annot(kAotExit, 1);
    e.annot(kAotEnter, 2);
    e.alu(1);
    e.annot(kAotExit, 2);
    e.alu(10);

    auto all = aot.significantFunctions(0.0);
    EXPECT_EQ(all.size(), 2u);
    auto big = aot.significantFunctions(0.5);
    ASSERT_EQ(big.size(), 1u);
    EXPECT_EQ(big[0].fnId, 1u);
}

TEST(IrNodeProfiler, CountsPerNode)
{
    Fixture f;
    IrNodeProfiler ir(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    for (int i = 0; i < 5; ++i)
        e.annot(kIrNode, 3);
    e.annot(kIrNode, 10);
    EXPECT_EQ(ir.totalExecuted(), 6u);
    EXPECT_EQ(ir.execCounts()[3], 5u);
    EXPECT_EQ(ir.execCounts()[10], 1u);
}

TEST(EventProfiler, CountsAllKinds)
{
    Fixture f;
    EventProfiler ev(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kLoopCompiled, 0);
    e.annot(kBridgeCompiled, 1);
    e.annot(kTraceAborted, 2);
    e.annot(kTraceEnter, 0);
    e.annot(kTraceEnter, 0);
    e.annot(kDeopt, 7);
    e.annot(kGcMinor, 0);
    e.annot(kGcMajor, 0);
    e.annot(kAppEvent, 3);
    EXPECT_EQ(ev.loopsCompiled, 1u);
    EXPECT_EQ(ev.bridgesCompiled, 1u);
    EXPECT_EQ(ev.tracesAborted, 1u);
    EXPECT_EQ(ev.traceEnters, 2u);
    EXPECT_EQ(ev.deopts, 1u);
    EXPECT_EQ(ev.gcMinor, 1u);
    EXPECT_EQ(ev.gcMajor, 1u);
    EXPECT_EQ(ev.appEvents, 1u);
}

} // namespace
} // namespace xlayer
} // namespace xlvm
