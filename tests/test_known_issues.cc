/**
 * @file
 * Guarded repro cases for known, documented engine bugs.
 *
 * Each test here pins a bug we know about but have not fixed yet, as an
 * EXPECTED failure: the test passes while the bug reproduces and FAILS
 * the moment the bug is fixed — the signal to delete the repro, close
 * the matching ROADMAP entry, and land the coordinated golden update.
 * Keep this file small; it is a ledger, not a dumping ground.
 */

#include <gtest/gtest.h>

#include "driver/runner.h"

namespace xlvm {
namespace {

/**
 * ROADMAP "Latent recording bug at high loop thresholds": hexiom2
 * crashes with a type-confusion panic ("unsupported []= on int", raised
 * from src/obj/space_containers.cc) when the trace threshold is exactly
 * 130 — loopThreshold=130 in the default tier, tier1Threshold=130 in
 * tier1/multi. Present on the pristine growth seed in every tier mode,
 * so it is a hotness-dependent recording/deopt bug in the tracing front
 * end, not a tiering or memoization regression. The bench tier sweeps
 * run at tier1Threshold=30/tier2Threshold=60 and are unaffected.
 *
 * The panic aborts the process, so the repro is a death test (the child
 * re-runs the workload in a forked process; the parent matches the
 * panic message on stderr). When a fix lands, this EXPECT_DEATH stops
 * matching and the test fails: delete it, resolve the ROADMAP entry,
 * and regenerate goldens with ci/check_goldens.sh --update (the fix
 * will move modeled counters).
 */
TEST(KnownIssues, Hexiom2RecordingCrashAtThreshold130)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    driver::RunOptions o;
    o.workload = "hexiom2";
    o.vm = driver::VmKind::PyPyJit;
    // The bench sweep configuration (bench_common.h baseOptions) with
    // the threshold moved to the crashing value.
    o.loopThreshold = 130;
    o.bridgeThreshold = 40;
    o.maxInstructions = 400u * 1000 * 1000;
    EXPECT_DEATH(driver::runWorkload(o), "unsupported \\[\\]= on int");
}

} // namespace
} // namespace xlvm
