/**
 * @file
 * Guarded repro cases for known, documented engine bugs.
 *
 * Each test here pins a bug we know about but have not fixed yet, as an
 * EXPECTED failure: the test passes while the bug reproduces and FAILS
 * the moment the bug is fixed — the signal to delete the repro, close
 * the matching ROADMAP entry, and land the coordinated golden update.
 * Keep this file small; it is a ledger, not a dumping ground.
 *
 * Closed entries graduate into regression tests below the ledger: the
 * inverted assertion (the bug must NOT reproduce) stays here so the
 * file remains the single place where the engine's failure history is
 * executable.
 */

#include <gtest/gtest.h>

#include "driver/runner.h"

namespace xlvm {
namespace {

driver::RunOptions
hexiom2At130(vm::TierMode mode)
{
    driver::RunOptions o;
    o.workload = "hexiom2";
    o.vm = driver::VmKind::PyPyJit;
    // The bench sweep configuration (bench_common.h baseOptions) with
    // the hotness threshold moved to the historically crashing value:
    // loopThreshold=130 in the default tier, tier1Threshold=130 in
    // tier1/multi.
    o.loopThreshold = 130;
    o.bridgeThreshold = 40;
    o.tierMode = mode;
    o.tier1Threshold = 130;
    o.tier2Threshold = 160;
    o.maxInstructions = 400u * 1000 * 1000;
    return o;
}

/**
 * CLOSED — ROADMAP "Latent recording bug at high loop thresholds":
 * hexiom2 used to die with a type-confusion panic ("unsupported []= on
 * int") when the trace threshold was exactly 130, in every tier mode.
 * Root cause: maybeCallAssembler captured the outer resume frames of a
 * call_assembler io snapshot with post-call encodings, so a mismatched
 * inner exit rebuilt the outer frame from the exit contract's fresh
 * boxes and resumed the interpreter on type-confused slots. The fix
 * captures frames[2..] with pre-call encodings (and verifyTrace now
 * rejects the malformed shape outright, so a recurrence degrades to a
 * kMalformedTrace safe bailout instead of a heap-corrupting crash).
 *
 * The regression guard runs the exact repro in all three JIT tier
 * modes and requires clean completion.
 */
TEST(KnownIssues, Hexiom2Threshold130CompletesInAllTierModes)
{
    for (vm::TierMode mode : {vm::TierMode::Tier2, vm::TierMode::Tier1,
                              vm::TierMode::Multi}) {
        driver::RunResult r = driver::runWorkload(hexiom2At130(mode));
        EXPECT_TRUE(r.completed)
            << "tier mode " << vm::tierModeName(mode);
        EXPECT_TRUE(r.error.empty()) << r.error;
        // The run must finish because the bug is fixed — not because a
        // containment path papered over it: no malformed-trace bailout
        // may fire on the healthy engine.
        EXPECT_EQ(
            r.abortReasons[uint32_t(jit::AbortReason::kMalformedTrace)],
            0u)
            << "tier mode " << vm::tierModeName(mode);
    }
}

} // namespace
} // namespace xlvm
