/**
 * @file
 * Streaming event tracer: ring-buffer semantics, Chrome trace-event
 * export well-formedness, the xlvm-trace inspector helpers, and the
 * zero-perturbation differential guarantee (tracing on vs off leaves
 * every simulated counter bit-identical).
 */

#include <gtest/gtest.h>

#include "driver/runner.h"
#include "report/metrics.h"
#include "report/profile_export.h"
#include "report/trace_export.h"
#include "sim/core.h"
#include "sim/emitter.h"
#include "xlayer/annot.h"
#include "xlayer/bus.h"
#include "xlayer/phase_profiler.h"
#include "xlayer/tracer.h"

namespace xlvm {
namespace {

using namespace xlayer;

struct Fixture
{
    sim::Core core;
    AnnotationBus bus{core};
};

TracerOptions
capOpts(uint64_t capacity)
{
    TracerOptions o;
    o.capacityEvents = capacity;
    return o;
}

TEST(TracerRing, WraparoundKeepsNewestAndCountsDrops)
{
    Fixture f;
    EventTracer tracer(f.bus, capOpts(10));
    ASSERT_TRUE(tracer.enabled());

    sim::BlockEmitter e(f.core, 0x400000);
    for (uint32_t i = 0; i < 25; ++i) {
        e.alu(3);
        e.annot(kAppEvent, i);
    }

    EXPECT_EQ(tracer.recordedEvents(), 25u);
    EXPECT_EQ(tracer.droppedEvents(), 15u);
    ASSERT_EQ(tracer.size(), 10u);
    // The live window is the newest 10 events, oldest first.
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(tracer.at(i).payload, 15u + i);
    for (size_t i = 1; i < 10; ++i)
        EXPECT_GE(tracer.at(i).cyclesFp, tracer.at(i - 1).cyclesFp);
}

TEST(TracerRing, WraparoundAcrossChunkBoundary)
{
    Fixture f;
    const uint64_t cap = EventTracer::kChunkEvents + 1000;
    EventTracer tracer(f.bus, capOpts(cap));
    sim::BlockEmitter e(f.core, 0x400000);
    const uint32_t emitted = uint32_t(2 * cap + 17);
    for (uint32_t i = 0; i < emitted; ++i)
        e.annot(kAppEvent, i);

    EXPECT_EQ(tracer.recordedEvents(), emitted);
    EXPECT_EQ(tracer.droppedEvents(), emitted - cap);
    ASSERT_EQ(tracer.size(), cap);
    for (size_t i = 0; i < tracer.size(); ++i)
        EXPECT_EQ(tracer.at(i).payload, emitted - cap + i);
}

TEST(TracerRing, DisabledNeverSubscribesOrRecords)
{
    Fixture f;
    EventTracer tracer(f.bus, capOpts(0));
    EXPECT_FALSE(tracer.enabled());
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kDeopt, 1);
    EXPECT_EQ(tracer.recordedEvents(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    // Direct delivery must also be a no-op, not a division by zero.
    tracer.onAnnot(kDeopt, 2);
    EXPECT_EQ(tracer.recordedEvents(), 0u);
}

TEST(TracerRing, DefaultTagMaskExcludesFirehoseTags)
{
    Fixture f;
    EventTracer tracer(f.bus, capOpts(100));
    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kDispatch, 1);
    e.annot(kIrNode, 2);
    e.annot(kAotEnter, 3);
    e.annot(kAotExit, 3);
    e.annot(kDeopt, 7);
    ASSERT_EQ(tracer.recordedEvents(), 1u);
    EXPECT_EQ(tracer.at(0).tag, uint32_t(kDeopt));
    EXPECT_EQ(tracer.at(0).payload, 7u);
}

TEST(TracerRing, RecordsPhaseAfterTransitionAndRunId)
{
    Fixture f;
    PhaseProfiler phases(f.bus); // registered first: updates the bucket
    TracerOptions opts = capOpts(100);
    opts.runId = 42;
    EventTracer tracer(f.bus, opts);

    sim::BlockEmitter e(f.core, 0x400000);
    e.annot(kPhaseEnter, uint32_t(Phase::Jit));
    e.alu(5);
    e.annot(kPhaseExit, uint32_t(Phase::Jit));

    ASSERT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.at(0).tag, uint32_t(kPhaseEnter));
    EXPECT_EQ(tracer.at(0).phase, uint8_t(Phase::Jit));
    EXPECT_EQ(tracer.at(1).tag, uint32_t(kPhaseExit));
    EXPECT_EQ(tracer.at(1).phase, uint8_t(Phase::Interpreter));
    EXPECT_EQ(tracer.at(0).runId, 42u);
    // Timestamp is the exact total-cycle clock at record time.
    EXPECT_EQ(tracer.at(1).cyclesFp, f.core.totalCyclesFp());
}

TEST(TracerRing, CounterSamplerFiresOnFrameworkEvents)
{
    Fixture f;
    EventTracer tracer(f.bus, capOpts(100));
    tracer.setCounterSampler([] {
        TraceCounterSample s{};
        s.heapBytes = 111;
        s.traceCacheBytes = 222;
        return s;
    });
    sim::BlockEmitter e(f.core, 0x400000);
    e.alu(10);
    e.annot(kGcMinor, 0);   // samples
    e.annot(kAppEvent, 1);  // recorded, but no sample
    ASSERT_EQ(tracer.counterSamples().size(), 1u);
    EXPECT_EQ(tracer.counterSamples()[0].heapBytes, 111u);
    EXPECT_EQ(tracer.counterSamples()[0].traceCacheBytes, 222u);
    EXPECT_GT(tracer.counterSamples()[0].cyclesFp, 0u);
    EXPECT_EQ(tracer.droppedCounterSamples(), 0u);
    EXPECT_EQ(tracer.recordedEvents(), 2u);
}

TEST(TracerRing, TakeDrainsOldestFirstAndResets)
{
    Fixture f;
    EventTracer tracer(f.bus, capOpts(4));
    sim::BlockEmitter e(f.core, 0x400000);
    for (uint32_t i = 0; i < 6; ++i)
        e.annot(kAppEvent, i);

    TraceLog log = tracer.take();
    EXPECT_EQ(log.recordedEvents, 6u);
    EXPECT_EQ(log.droppedEvents, 2u);
    EXPECT_EQ(log.capacityEvents, 4u);
    ASSERT_EQ(log.events.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(log.events[i].payload, 2u + i);

    EXPECT_EQ(tracer.recordedEvents(), 0u);
    e.annot(kAppEvent, 99);
    ASSERT_EQ(tracer.size(), 1u);
    EXPECT_EQ(tracer.at(0).payload, 99u);
}

TEST(TagNames, RoundTrip)
{
    EXPECT_STREQ(report::annotTagName(kDeopt), "deopt");
    EXPECT_EQ(report::annotTagFromString("deopt"), int32_t(kDeopt));
    EXPECT_EQ(report::annotTagFromString("9"), int32_t(kDeopt));
    EXPECT_EQ(report::annotTagFromString("gc_minor"),
              int32_t(kGcMinor));
    EXPECT_EQ(report::annotTagFromString("nonsense"), -1);
}

// ---- Chrome export ----------------------------------------------------

driver::RunOptions
smallJitRun()
{
    driver::RunOptions o;
    o.workload = "richards";
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 120;
    o.bridgeThreshold = 40;
    o.maxInstructions = 2u * 1000 * 1000;
    return o;
}

TEST(ChromeExport, WellFormedRoundTripsThroughJsonParser)
{
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_GT(r.trace.recordedEvents, 0u);
    EXPECT_EQ(r.trace.droppedEvents, 0u);

    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    report::Json doc = builder.toJson();

    std::string err;
    report::Json parsed = report::Json::parse(doc.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const report::Json *events = parsed.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->size(), 0u);

    size_t begins = 0, ends = 0;
    for (const report::Json &ev : events->items()) {
        const report::Json *ph = ev.get("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ev.get("name"), nullptr);
        ASSERT_NE(ev.get("pid"), nullptr);
        if (ph->asString() == "M")
            continue;
        ASSERT_NE(ev.get("ts"), nullptr);
        ASSERT_NE(ev.get("args"), nullptr);
        if (ph->asString() == "B")
            ++begins;
        if (ph->asString() == "E")
            ++ends;
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends); // balanced durations load in Perfetto
}

TEST(ChromeExport, SyntheticRepairBalancesWrappedHead)
{
    // A head-truncated log: the ring wrapped and the first surviving
    // record is an exit whose begin was overwritten.
    TraceLog log;
    log.capacityEvents = 4;
    log.recordedEvents = 10;
    log.droppedEvents = 6;
    TraceRecord r{};
    r.cyclesFp = 1000;
    r.tag = kPhaseExit;
    r.payload = uint32_t(Phase::Jit);
    r.phase = uint8_t(Phase::Interpreter);
    log.events.push_back(r);
    r.cyclesFp = 1200;
    r.tag = kTraceLeave;
    r.payload = 7;
    log.events.push_back(r);
    r.cyclesFp = 1400;
    r.tag = kPhaseEnter;
    r.payload = uint32_t(Phase::Gc);
    r.phase = uint8_t(Phase::Gc);
    log.events.push_back(r); // left open: run was cut mid-phase

    report::ChromeTraceBuilder builder;
    builder.addRun("wl", "vm", log);
    EXPECT_EQ(builder.droppedEvents(), 6u);
    report::Json doc = builder.toJson();

    size_t begins = 0, ends = 0, synth = 0;
    for (const report::Json &ev : doc.get("traceEvents")->items()) {
        const std::string &ph = ev.get("ph")->asString();
        if (ph == "B")
            ++begins;
        if (ph == "E")
            ++ends;
        const report::Json *args = ev.get("args");
        if (args && args->get("synth"))
            ++synth;
    }
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(synth, 3u); // two synthetic begins + one synthetic end
}

TEST(ChromeExport, CounterTracksPresent)
{
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_FALSE(r.trace.counters.empty());

    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    report::Json doc = builder.toJson();
    size_t heap = 0, cache = 0;
    for (const report::Json &ev : doc.get("traceEvents")->items()) {
        if (ev.get("ph")->asString() != "C")
            continue;
        const std::string &name = ev.get("name")->asString();
        if (name == "heap_bytes")
            ++heap;
        if (name == "trace_cache_bytes")
            ++cache;
    }
    EXPECT_EQ(heap, r.trace.counters.size());
    EXPECT_EQ(cache, r.trace.counters.size());
}

TEST(ChromeExport, FilterByTagPhaseAndCycleRange)
{
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    report::Json doc = builder.toJson();

    report::TraceFilter byTag;
    byTag.tag = int32_t(kDeopt);
    report::Json deopts = report::filterChromeTrace(doc, byTag);
    size_t n = 0;
    for (const report::Json &ev : deopts.get("traceEvents")->items()) {
        if (ev.get("ph")->asString() == "M")
            continue;
        EXPECT_EQ(ev.get("args")->get("tag")->asUInt(),
                  uint64_t(kDeopt));
        ++n;
    }
    EXPECT_EQ(n, uint64_t(r.deopts));

    report::TraceFilter byRange;
    byRange.cycleMin = 0;
    byRange.cycleMax = uint64_t(r.cycles / 2);
    report::Json half = report::filterChromeTrace(doc, byRange);
    ASSERT_GT(half.get("traceEvents")->size(), 0u);
    for (const report::Json &ev : half.get("traceEvents")->items()) {
        if (ev.get("ph")->asString() == "M")
            continue;
        EXPECT_LE(ev.get("args")->get("cfp")->asUInt() / sim::kCycleFp,
                  byRange.cycleMax);
    }

    report::TraceFilter byPhase;
    byPhase.phase = "jit";
    report::Json jitOnly = report::filterChromeTrace(doc, byPhase);
    for (const report::Json &ev : jitOnly.get("traceEvents")->items()) {
        if (ev.get("ph")->asString() == "M")
            continue;
        EXPECT_EQ(ev.get("args")->get("phase")->asString(), "jit");
    }

    // The dump renderer accepts any of these documents.
    EXPECT_FALSE(report::dumpChromeTrace(deopts).empty());
}

TEST(ChromeExport, SummarizeMatchesProfilerTotals)
{
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_EQ(r.trace.droppedEvents, 0u);

    // Expected per-phase enter counts straight from the raw records.
    uint64_t rawJitEnters = 0, rawGcEnters = 0;
    for (const TraceRecord &rec : r.trace.events) {
        if (rec.tag == kPhaseEnter) {
            if (rec.payload == uint32_t(Phase::Jit))
                ++rawJitEnters;
            if (rec.payload == uint32_t(Phase::Gc))
                ++rawGcEnters;
        }
    }

    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    report::Json summary =
        report::summarizeChromeTrace(builder.toJson(), 5);

    const report::Json *phases = summary.get("phase_events");
    ASSERT_NE(phases, nullptr);
    const report::Json *jit = phases->get("jit");
    ASSERT_NE(jit, nullptr);
    // Every trace execution enters the Jit phase exactly once, so the
    // summarized enter count must equal the event profiler's
    // trace-enter total (the phase profiler's bucket switches).
    EXPECT_EQ(jit->get("enters")->asUInt(), r.traceEnters);
    EXPECT_EQ(jit->get("enters")->asUInt(), rawJitEnters);
    EXPECT_EQ(jit->get("exits")->asUInt(), rawJitEnters);

    // This run may be too small to trigger a collection; when it does,
    // the summarized gc enters must equal the event profiler's totals.
    EXPECT_EQ(rawGcEnters, r.gcMinor + r.gcMajor);
    const report::Json *gc = phases->get("gc");
    if (rawGcEnters > 0) {
        ASSERT_NE(gc, nullptr);
        EXPECT_EQ(gc->get("enters")->asUInt(), rawGcEnters);
    }

    const report::Json *instants = summary.get("instants");
    ASSERT_NE(instants, nullptr);
    const report::Json *deopt = instants->get("deopt");
    ASSERT_NE(deopt, nullptr);
    EXPECT_EQ(deopt->asUInt(), r.deopts);

    EXPECT_FALSE(report::formatTraceSummary(summary).empty());
}

TEST(ChromeExport, ProvenanceHeadersRoundTrip)
{
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);

    report::ChromeTraceBuilder builder;
    report::Json docProv = report::Json::object();
    docProv.set("report", report::Json("unit"));
    docProv.set("schema_version",
                report::Json(report::MetricsRegistry::kSchemaVersion));
    docProv.set("tier_mode",
                report::Json(vm::tierModeName(o.tierMode)));
    docProv.set("sampler_interval_cycles", report::Json(uint64_t(5000)));
    builder.setProvenance(std::move(docProv));
    report::Json runProv = report::runProvenance(o);
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace,
                   &runProv);

    // Serialize and reparse: provenance must survive the round trip
    // field for field, at both the document and the run level.
    std::string err;
    report::Json parsed =
        report::Json::parse(builder.toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const report::Json *other = parsed.get("otherData");
    ASSERT_NE(other, nullptr);
    const report::Json *prov = other->get("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->get("report")->asString(), "unit");
    EXPECT_EQ(prov->get("schema_version")->asUInt(),
              uint64_t(report::MetricsRegistry::kSchemaVersion));
    EXPECT_EQ(prov->get("tier_mode")->asString(),
              std::string(vm::tierModeName(o.tierMode)));
    EXPECT_EQ(prov->get("sampler_interval_cycles")->asUInt(), 5000u);

    const report::Json *runs = other->get("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 1u);
    const report::Json *rp = runs->items()[0].get("provenance");
    ASSERT_NE(rp, nullptr);
    EXPECT_EQ(rp->get("workload")->asString(), o.workload);
    EXPECT_EQ(rp->get("vm")->asString(),
              std::string(driver::vmKindName(o.vm)));
    EXPECT_EQ(rp->get("loop_threshold")->asUInt(), o.loopThreshold);
    EXPECT_EQ(rp->get("tier_mode")->asString(),
              std::string(vm::tierModeName(o.tierMode)));

    // Filtering preserves the header (it only rewrites traceEvents).
    report::TraceFilter f;
    f.tag = int32_t(kDeopt);
    report::Json filtered = report::filterChromeTrace(parsed, f);
    const report::Json *fo = filtered.get("otherData");
    ASSERT_NE(fo, nullptr);
    ASSERT_NE(fo->get("provenance"), nullptr);
    EXPECT_EQ(fo->get("provenance")->get("report")->asString(), "unit");
}

// ---- Corrupt / truncated input handling (see ISSUE satellite) --------

TEST(CorruptInput, TruncatedFileFailsParseWithClearError)
{
    // A real export, cut mid-record — what a crashed or disk-full run
    // leaves behind. The parser must report an error (which xlvm-trace
    // turns into a nonzero exit), not crash or return a partial doc.
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    std::string full = builder.toJson().dump(2);

    // Cut inside the middle of an event record: find an interior
    // "args" key and truncate right after it.
    size_t cut = full.find("\"args\"", full.size() / 2);
    ASSERT_NE(cut, std::string::npos);
    std::string truncated = full.substr(0, cut + 3);

    std::string err;
    report::Json doc = report::Json::parse(truncated, &err);
    EXPECT_FALSE(err.empty());

    // Truncation at every prefix length around a record boundary must
    // also fail cleanly (never crash, never silently succeed).
    for (size_t len = cut > 40 ? cut - 40 : 0; len < cut; len += 7) {
        std::string perr;
        report::Json::parse(full.substr(0, len), &perr);
        EXPECT_FALSE(perr.empty()) << "prefix length " << len;
    }
}

TEST(CorruptInput, SummarizeToleratesRecordsWithMissingFields)
{
    // Parseable JSON whose events lost fields (hand-edited or produced
    // by a foreign tool): summarize and the text renderer must not
    // crash and must keep the well-formed events visible.
    const char *text =
        "{\"traceEvents\": ["
        "{\"ph\": \"B\", \"args\": {\"tag\": 1, \"payload\": 2}},"
        "{\"name\": \"jit\", \"ph\": \"E\","
        " \"args\": {\"tag\": 2, \"payload\": 2}},"
        "{\"ph\": \"i\"},"
        "{\"name\": \"deopt\", \"ph\": \"i\", \"args\": {\"tag\": 9}},"
        "{\"ph\": \"C\"}"
        "]}";
    std::string err;
    report::Json doc = report::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;

    report::Json summary = report::summarizeChromeTrace(doc, 5);
    EXPECT_EQ(summary.get("total_events")->asUInt(), 5u);
    EXPECT_EQ(summary.get("counter_samples")->asUInt(), 1u);
    // The nameless phase event lands in the "?" bucket.
    const report::Json *phases = summary.get("phase_events");
    ASSERT_NE(phases, nullptr);
    ASSERT_NE(phases->get("?"), nullptr);
    EXPECT_EQ(phases->get("?")->get("enters")->asUInt(), 1u);
    ASSERT_NE(phases->get("jit"), nullptr);
    EXPECT_EQ(phases->get("jit")->get("exits")->asUInt(), 1u);

    // The renderer handles the sparse summary without crashing.
    EXPECT_FALSE(report::formatTraceSummary(summary).empty());
    // So does the line dumper on the original sparse events.
    report::dumpChromeTrace(doc);
}

TEST(CorruptInput, SummarizeJsonOutputReparsesToSameTotals)
{
    // The `xlvm-trace summarize --json` contract: the emitted JSON
    // reparses, and its totals equal the PhaseProfiler's totals from
    // the run itself (not merely the in-memory Json object's).
    driver::RunOptions o = smallJitRun();
    o.traceBufferEvents = 1u << 16;
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_EQ(r.trace.droppedEvents, 0u);
    report::ChromeTraceBuilder builder;
    builder.addRun(o.workload, driver::vmKindName(o.vm), r.trace);
    report::Json summary =
        report::summarizeChromeTrace(builder.toJson(), 10);

    std::string err;
    report::Json reparsed = report::Json::parse(summary.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;

    const report::Json *phases = reparsed.get("phase_events");
    ASSERT_NE(phases, nullptr);
    const report::Json *jit = phases->get("jit");
    ASSERT_NE(jit, nullptr);
    EXPECT_EQ(jit->get("enters")->asUInt(), r.traceEnters);
    const report::Json *gc = phases->get("gc");
    if (r.gcMinor + r.gcMajor > 0) {
        ASSERT_NE(gc, nullptr);
        EXPECT_EQ(gc->get("enters")->asUInt(), r.gcMinor + r.gcMajor);
    }
    const report::Json *instants = reparsed.get("instants");
    ASSERT_NE(instants, nullptr);
    ASSERT_NE(instants->get("deopt"), nullptr);
    EXPECT_EQ(instants->get("deopt")->asUInt(), r.deopts);
}

// ---- Differential: tracing must not perturb the simulation ----------

/** CSV rows minus the tracer's own accounting (section "tracer" and
 *  the config knob), which legitimately differ between the two runs. */
std::string
csvWithoutTracerRows(const report::MetricsRegistry &reg)
{
    std::string csv = reg.toCsv();
    std::string out;
    size_t start = 0;
    while (start < csv.size()) {
        size_t end = csv.find('\n', start);
        if (end == std::string::npos)
            end = csv.size();
        std::string line = csv.substr(start, end - start);
        if (line.find(",tracer,") == std::string::npos &&
            line.find(",trace_buffer_events,") == std::string::npos)
            out += line + "\n";
        start = end + 1;
    }
    return out;
}

TEST(Differential, TracerOnVsOffCountersBitIdentical)
{
    driver::RunOptions off = smallJitRun();
    driver::RunOptions on = smallJitRun();
    on.traceBufferEvents = 1u << 16;

    driver::RunResult roff = driver::runWorkload(off);
    driver::RunResult ron = driver::runWorkload(on);
    ASSERT_TRUE(roff.completed);
    ASSERT_TRUE(ron.completed);
    ASSERT_GT(ron.trace.recordedEvents, 0u);
    EXPECT_EQ(roff.trace.recordedEvents, 0u);

    // Program output and exact machine counters must not move.
    EXPECT_EQ(roff.output, ron.output);
    EXPECT_EQ(roff.instructions, ron.instructions);
    EXPECT_EQ(roff.cycles, ron.cycles);
    for (uint32_t p = 0; p < kNumPhases; ++p) {
        const sim::PerfCounters &a = roff.phaseCounters[p];
        const sim::PerfCounters &b = ron.phaseCounters[p];
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.cyclesFp, b.cyclesFp);
        EXPECT_EQ(a.branches, b.branches);
        EXPECT_EQ(a.mispredicts, b.mispredicts);
        EXPECT_EQ(a.loads, b.loads);
        EXPECT_EQ(a.stores, b.stores);
        EXPECT_EQ(a.icacheMisses, b.icacheMisses);
        EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
        EXPECT_EQ(a.annotations, b.annotations);
    }

    // And the full golden-style report agrees row for row once the
    // tracer's own accounting section is set aside.
    report::MetricsRegistry regOff("diff"), regOn("diff");
    regOff.addRun(off, roff);
    regOn.addRun(on, ron);
    EXPECT_EQ(csvWithoutTracerRows(regOff), csvWithoutTracerRows(regOn));
}

// ---- Phase profiler underflow rejection (see ISSUE satellite) --------

TEST(PhaseProfilerUnderflow, ExitOnBottomedStackIsCountedNotPopped)
{
    Fixture f;
    PhaseProfiler phases(f.bus);
    sim::BlockEmitter e(f.core, 0x400000);

    e.annot(kPhaseExit, uint32_t(Phase::Interpreter)); // malformed
    EXPECT_EQ(phases.phaseUnderflows(), 1u);
    EXPECT_EQ(phases.stackDepth(), 1u);
    EXPECT_EQ(phases.currentPhase(), Phase::Interpreter);

    // The profiler keeps working normally afterwards.
    e.annot(kPhaseEnter, uint32_t(Phase::Jit));
    e.alu(4);
    e.annot(kPhaseExit, uint32_t(Phase::Jit));
    e.annot(kPhaseExit, uint32_t(Phase::Jit)); // malformed again
    EXPECT_EQ(phases.phaseUnderflows(), 2u);
    EXPECT_EQ(phases.currentPhase(), Phase::Interpreter);
    EXPECT_EQ(phases.phaseCounters(Phase::Jit).instructions, 4u);
}

} // namespace
} // namespace xlvm
