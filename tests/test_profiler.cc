/**
 * @file
 * Sampling profiler stack: histogram bucket math, deterministic
 * cycle-sampling (bit-identical profiles across repeated runs), the
 * zero-perturbation differential guarantee (profiler on vs off leaves
 * every modeled counter bit-identical), guard-failure attribution
 * provenance, and the profile-export document/aggregation helpers
 * behind xlvm-prof.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "common/histogram.h"
#include "driver/runner.h"
#include "report/metrics.h"
#include "report/profile_export.h"
#include "xlayer/phase.h"
#include "xlayer/sampler.h"

namespace xlvm {
namespace {

using common::Histogram;

// ---- histogram bucket math -------------------------------------------

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (uint64_t v = 0; v < Histogram::kSubCount; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), uint64_t(Histogram::kSubCount));
    for (uint64_t v = 0; v < Histogram::kSubCount; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), uint32_t(v));
        EXPECT_EQ(Histogram::bucketLow(uint32_t(v)), v);
        EXPECT_EQ(Histogram::bucketHigh(uint32_t(v)), v);
    }
}

TEST(Histogram, BucketBoundsBracketEveryProbe)
{
    // lo(idx) <= v <= hi(idx), and both bounds map back to idx — the
    // bucket table is a partition of the value range.
    std::vector<uint64_t> probes = {0,    1,     15,        16,
                                    17,   100,   1023,      1024,
                                    4097, 65535, 1u << 20,  123456789,
                                    (1ull << 40) + 7, UINT64_MAX / 3};
    for (uint64_t v : probes) {
        uint32_t idx = Histogram::bucketIndex(v);
        ASSERT_LT(idx, Histogram::kNumBuckets) << v;
        EXPECT_LE(Histogram::bucketLow(idx), v) << v;
        EXPECT_GE(Histogram::bucketHigh(idx), v) << v;
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLow(idx)), idx);
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHigh(idx)),
                  idx);
    }
}

TEST(Histogram, PercentilesMonotonicAndClamped)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    uint64_t p50 = h.percentile(50.0);
    uint64_t p90 = h.percentile(90.0);
    uint64_t p99 = h.percentile(99.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Clamped into [min, max]: extremes are never over-stated.
    EXPECT_GE(p50, h.min());
    EXPECT_LE(h.percentile(100.0), h.max());
    // Log-linear resolution: the median of 1..1000 is within one
    // bucket (~6% relative) of 500.
    EXPECT_GE(p50, 470u);
    EXPECT_LE(p50, 540u);
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.nonzeroBuckets().empty());
}

TEST(Histogram, MergeMatchesCombinedStream)
{
    Histogram a, b, both;
    for (uint64_t v = 1; v < 500; v += 3) {
        a.record(v);
        both.record(v);
    }
    for (uint64_t v = 100000; v < 200000; v += 777) {
        b.recordN(v, 2);
        both.recordN(v, 2);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_EQ(a.percentile(50.0), both.percentile(50.0));
    EXPECT_EQ(a.percentile(99.0), both.percentile(99.0));
    std::vector<Histogram::Bucket> ba = a.nonzeroBuckets();
    std::vector<Histogram::Bucket> bb = both.nonzeroBuckets();
    ASSERT_EQ(ba.size(), bb.size());
    for (size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba[i].lo, bb[i].lo);
        EXPECT_EQ(ba[i].count, bb[i].count);
    }
}

// ---- sampler determinism and zero perturbation -----------------------

driver::RunOptions
smallJitRun()
{
    driver::RunOptions o;
    o.workload = "richards";
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 120;
    o.bridgeThreshold = 40;
    o.maxInstructions = 2u * 1000 * 1000;
    return o;
}

driver::RunOptions
profiledRun(uint64_t interval = 5000)
{
    driver::RunOptions o = smallJitRun();
    o.profileIntervalCycles = interval;
    return o;
}

TEST(Sampler, ProfileBitIdenticalAcrossRepeatedRuns)
{
    driver::RunResult r1 = driver::runWorkload(profiledRun());
    driver::RunResult r2 = driver::runWorkload(profiledRun());
    ASSERT_TRUE(r1.completed);
    ASSERT_GT(r1.profile.samples, 0u);
    EXPECT_EQ(r1.profile.samples, r2.profile.samples);
    ASSERT_EQ(r1.profile.sites.size(), r2.profile.sites.size());
    for (size_t i = 0; i < r1.profile.sites.size(); ++i) {
        EXPECT_EQ(r1.profile.sites[i].phase, r2.profile.sites[i].phase);
        EXPECT_EQ(r1.profile.sites[i].ctx, r2.profile.sites[i].ctx);
        EXPECT_EQ(r1.profile.sites[i].pc, r2.profile.sites[i].pc);
        EXPECT_EQ(r1.profile.sites[i].count, r2.profile.sites[i].count);
    }
    EXPECT_EQ(r1.profile.phaseSeq, r2.profile.phaseSeq);

    // The exported documents are byte-identical too.
    report::ProfileBuilder b1("t"), b2("t");
    b1.addRun(profiledRun(), r1);
    b2.addRun(profiledRun(), r2);
    EXPECT_EQ(b1.toJson().dump(2), b2.toJson().dump(2));
    EXPECT_EQ(b1.toFolded(), b2.toFolded());
}

TEST(Sampler, CountersBitIdenticalOnVsOff)
{
    driver::RunResult off = driver::runWorkload(smallJitRun());
    driver::RunResult on = driver::runWorkload(profiledRun());
    ASSERT_TRUE(off.completed);
    ASSERT_TRUE(on.completed);
    EXPECT_EQ(off.profile.samples, 0u);
    ASSERT_GT(on.profile.samples, 0u);

    EXPECT_EQ(off.output, on.output);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.cycles, on.cycles);
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        const sim::PerfCounters &a = off.phaseCounters[p];
        const sim::PerfCounters &b = on.phaseCounters[p];
        EXPECT_EQ(a.instructions, b.instructions) << "phase " << p;
        EXPECT_EQ(a.cyclesFp, b.cyclesFp) << "phase " << p;
        EXPECT_EQ(a.branches, b.branches);
        EXPECT_EQ(a.mispredicts, b.mispredicts);
        EXPECT_EQ(a.loads, b.loads);
        EXPECT_EQ(a.stores, b.stores);
        EXPECT_EQ(a.icacheMisses, b.icacheMisses);
        EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    }

    // Latency histograms are modeled statistics, not sampler output:
    // they must agree between the two runs as well.
    EXPECT_EQ(off.iterationLatency.count(), on.iterationLatency.count());
    EXPECT_EQ(off.iterationLatency.sum(), on.iterationLatency.sum());
    EXPECT_EQ(off.executionLength.count(), on.executionLength.count());
    EXPECT_EQ(off.executionLength.sum(), on.executionLength.sum());
}

TEST(Sampler, EverySampleCarriesPhaseAndContext)
{
    driver::RunResult r = driver::runWorkload(profiledRun());
    ASSERT_GT(r.profile.samples, 0u);
    uint64_t attributed = 0;
    uint64_t lastKey[3] = {0, 0, 0};
    bool first = true;
    for (const xlayer::SampleSite &s : r.profile.sites) {
        EXPECT_LT(s.phase, xlayer::kNumPhases);
        EXPECT_GT(s.count, 0u);
        attributed += s.count;
        if (!first) {
            // Ascending (phase, ctx, pc) order — the determinism
            // contract the exporters rely on.
            bool ascending =
                std::make_tuple(lastKey[0], lastKey[1], lastKey[2]) <
                std::make_tuple(uint64_t(s.phase), s.ctx, s.pc);
            EXPECT_TRUE(ascending);
        }
        lastKey[0] = s.phase;
        lastKey[1] = s.ctx;
        lastKey[2] = s.pc;
        first = false;
    }
    // 100% attribution: every sample lands in a (phase, context) cell.
    EXPECT_EQ(attributed, r.profile.samples);

    // The RLE phase timeline covers exactly the same samples.
    uint64_t seqTotal = 0;
    for (const auto &pr : r.profile.phaseSeq)
        seqTotal += pr.second;
    EXPECT_EQ(seqTotal, r.profile.samples);

    // A JIT-heavy run samples both interpreter and trace contexts.
    bool sawInterp = false, sawTrace = false;
    for (const xlayer::SampleSite &s : r.profile.sites) {
        sim::SampleCtxKind k = sim::sampleCtxKind(s.ctx);
        if (k == sim::SampleCtxKind::Interp)
            sawInterp = true;
        if (k == sim::SampleCtxKind::Trace ||
            k == sim::SampleCtxKind::Bridge)
            sawTrace = true;
    }
    EXPECT_TRUE(sawInterp);
    EXPECT_TRUE(sawTrace);
}

// ---- guard-failure attribution ---------------------------------------

TEST(DeoptAttribution, SitesCarryProvenance)
{
    driver::RunResult r = driver::runWorkload(smallJitRun());
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.deopts, 0u);
    ASSERT_FALSE(r.deoptSites.empty());
    for (const driver::DeoptSite &d : r.deoptSites) {
        EXPECT_GT(d.failCount, 0u);
        EXPECT_FALSE(d.guardOp.empty());
        EXPECT_FALSE(d.mop.empty());
        EXPECT_GE(d.tier, 1u);
    }
    // Symbols cover every registered trace; every deopt site's trace
    // has a symbol.
    ASSERT_FALSE(r.traceSymbols.empty());
    for (const driver::DeoptSite &d : r.deoptSites) {
        bool found = false;
        for (const driver::TraceSymbol &s : r.traceSymbols)
            if (s.traceId == d.traceId)
                found = true;
        EXPECT_TRUE(found) << "trace " << d.traceId;
    }
}

// ---- export document and aggregations --------------------------------

TEST(ProfileExport, DocumentRoundTripsWithProvenance)
{
    driver::RunOptions o = profiledRun();
    driver::RunResult r = driver::runWorkload(o);
    report::ProfileBuilder b("unit");
    b.addRun(o, r);
    ASSERT_EQ(b.runCount(), 1u);

    std::string err;
    report::Json doc = report::Json::parse(b.toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_NE(doc.get("kind"), nullptr);
    EXPECT_EQ(doc.get("kind")->asString(), "xlvm-profile");
    EXPECT_EQ(doc.get("schema_version")->asUInt(),
              uint64_t(report::MetricsRegistry::kSchemaVersion));

    const report::Json *runs = doc.get("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 1u);
    const report::Json &run = runs->items()[0];
    EXPECT_EQ(run.get("workload")->asString(), o.workload);
    EXPECT_EQ(run.get("interval_cycles")->asUInt(),
              o.profileIntervalCycles);

    // Provenance block: schema version, tier mode, sampler interval,
    // workload/VM config — asserted field by field (the round-trip
    // contract the folded headers and Chrome export reuse).
    const report::Json *prov = run.get("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->get("schema_version")->asUInt(),
              uint64_t(report::MetricsRegistry::kSchemaVersion));
    EXPECT_EQ(prov->get("tier_mode")->asString(),
              std::string(vm::tierModeName(o.tierMode)));
    EXPECT_EQ(prov->get("interval_cycles")->asUInt(),
              o.profileIntervalCycles);
    EXPECT_EQ(prov->get("workload")->asString(), o.workload);
    EXPECT_EQ(prov->get("vm")->asString(),
              std::string(driver::vmKindName(o.vm)));
    EXPECT_EQ(prov->get("loop_threshold")->asUInt(), o.loopThreshold);
    EXPECT_EQ(prov->get("bridge_threshold")->asUInt(),
              o.bridgeThreshold);

    // Site counts in the document sum to the sample total.
    uint64_t total = 0;
    for (const report::Json &s : run.get("sites")->items())
        total += s.get("count")->asUInt();
    EXPECT_EQ(total, run.get("samples")->asUInt());

    // Latency section carries the histogram stats.
    const report::Json *lat = run.get("latency");
    ASSERT_NE(lat, nullptr);
    ASSERT_NE(lat->get("iteration"), nullptr);
    EXPECT_EQ(lat->get("iteration")->get("count")->asUInt(),
              r.iterationLatency.count());
}

TEST(ProfileExport, FoldedHeadersAndStackLines)
{
    driver::RunOptions o = profiledRun();
    driver::RunResult r = driver::runWorkload(o);
    report::ProfileBuilder b("unit");
    b.addRun(o, r);
    std::string folded = b.toFolded();
    ASSERT_FALSE(folded.empty());
    // Provenance rides along as '# key: value' comments.
    EXPECT_NE(folded.find("# tier_mode: "), std::string::npos);
    EXPECT_NE(folded.find("# workload: richards"), std::string::npos);
    // Stack lines: workload@vm;phase;context;pc count.
    EXPECT_NE(folded.find("richards@"), std::string::npos);
    uint64_t total = 0;
    size_t start = 0;
    while (start < folded.size()) {
        size_t end = folded.find('\n', start);
        if (end == std::string::npos)
            end = folded.size();
        std::string line = folded.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_NE(line.find(';'), std::string::npos) << line;
        total += std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    }
    EXPECT_EQ(total, r.profile.samples);
}

TEST(ProfileExport, TopTreeAndDeoptAggregations)
{
    driver::RunOptions o = profiledRun();
    driver::RunResult r = driver::runWorkload(o);
    report::ProfileBuilder b("unit");
    b.addRun(o, r);
    report::Json doc = b.toJson();

    // top with no cap: counts sum to the sample total (the >=95%
    // attribution acceptance is trivially 100% by construction; this
    // pins it).
    report::Json top = report::profileTop(doc, 0);
    uint64_t topTotal = 0;
    for (const report::Json &row : top.items())
        topTotal += row.get("count")->asUInt();
    EXPECT_EQ(topTotal, r.profile.samples);
    EXPECT_FALSE(report::formatProfileTop(top).empty());

    // tree: per-phase rollups also sum to the total.
    report::Json tree = report::profileTree(doc);
    uint64_t treeTotal = 0;
    for (const report::Json &run : tree.items())
        for (const report::Json &ph : run.get("phases")->items())
            treeTotal += ph.get("count")->asUInt();
    EXPECT_EQ(treeTotal, r.profile.samples);
    EXPECT_FALSE(report::formatProfileTree(tree).empty());

    // top-deopts: descending fail counts with provenance columns.
    report::Json deopts = report::profileTopDeopts(doc, 0);
    ASSERT_EQ(deopts.size(), r.deoptSites.size());
    uint64_t prev = UINT64_MAX;
    for (const report::Json &d : deopts.items()) {
        uint64_t fails = d.get("fail_count")->asUInt();
        EXPECT_LE(fails, prev);
        prev = fails;
        EXPECT_NE(d.get("guard_op"), nullptr);
        EXPECT_NE(d.get("origin_pc"), nullptr);
        EXPECT_NE(d.get("trace"), nullptr);
    }
    EXPECT_FALSE(report::formatProfileDeopts(deopts).empty());
    EXPECT_FALSE(report::formatProfileDump(doc).empty());
}

TEST(ProfileExport, ChromeCounterTracksWellFormed)
{
    driver::RunOptions o = profiledRun();
    driver::RunResult r = driver::runWorkload(o);
    ASSERT_GT(r.profile.samples, 0u);
    report::ProfileBuilder b("unit");
    b.addRun(o, r);

    report::Json counters = report::profileChromeCounters(b.toJson());
    std::string err;
    report::Json parsed = report::Json::parse(counters.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const report::Json *events = parsed.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    size_t counterEvents = 0;
    double lastTs = -1.0;
    for (const report::Json &ev : events->items()) {
        const std::string &ph = ev.get("ph")->asString();
        if (ph != "C")
            continue;
        ++counterEvents;
        double ts = ev.get("ts")->asDouble();
        EXPECT_GE(ts, lastTs); // time axis is monotone per track merge
        lastTs = ts;
    }
    EXPECT_EQ(counterEvents, r.profile.phaseSeq.size());
}

TEST(ProfileExport, SampleCtxLabels)
{
    using sim::sampleCtxPack;
    using sim::SampleCtxKind;
    EXPECT_EQ(report::sampleCtxLabel(
                  sampleCtxPack(SampleCtxKind::Interp, 0, 0)),
              "interp");
    EXPECT_EQ(report::sampleCtxLabel(
                  sampleCtxPack(SampleCtxKind::Trace, 2, 7)),
              "trace:7@t2");
    EXPECT_EQ(report::sampleCtxLabel(
                  sampleCtxPack(SampleCtxKind::Bridge, 1, 9)),
              "bridge:9@t1");
    EXPECT_EQ(report::sampleCtxLabel(
                  sampleCtxPack(SampleCtxKind::Gc, 0, 3)),
              "gc:3");
    EXPECT_EQ(report::sampleCtxLabel(
                  sampleCtxPack(SampleCtxKind::Compile, 0, 5)),
              "compile:5");
}

// ---- latency histograms from a real run ------------------------------

TEST(Latency, IterationHistogramPopulatedOnJitRun)
{
    driver::RunResult r = driver::runWorkload(smallJitRun());
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.iterationLatency.count(), 0u);
    EXPECT_GT(r.iterationLatency.max(), 0u);
    EXPECT_LE(r.iterationLatency.percentile(50.0),
              r.iterationLatency.percentile(99.0));
    ASSERT_GT(r.executionLength.count(), 0u);
    // Executions happen at all only because traces compiled; their
    // recorded count can't exceed trace entries.
    EXPECT_LE(r.executionLength.count(), r.traceEnters);
}

} // namespace
} // namespace xlvm
