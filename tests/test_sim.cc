#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/branch_pred.h"
#include "sim/cache.h"
#include "sim/code_space.h"
#include "sim/core.h"
#include "sim/emitter.h"

namespace xlvm {
namespace sim {
namespace {

TEST(Cache, HitsAfterFill)
{
    Cache c;
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1004)); // same line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, DistinctLinesMiss)
{
    Cache c;
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.access(0x1000));
}

TEST(Cache, LruEviction)
{
    // 2-way, 2 sets, 64B lines => 256B cache.
    CacheParams p;
    p.sizeBytes = 256;
    p.lineBytes = 64;
    p.ways = 2;
    Cache c(p);
    // Three lines mapping to set 0 (line addr stride = 2 sets * 64).
    c.access(0 * 128);
    c.access(1 * 128);
    c.access(2 * 128);          // evicts line 0
    EXPECT_FALSE(c.access(0));  // must miss again
    EXPECT_TRUE(c.access(256)); // line 2 still resident
}

TEST(Cache, AccessNMatchesRepeatedAccess)
{
    // accessN(addr, n) must leave counters and replacement state exactly
    // as n back-to-back access(addr) calls would.
    CacheParams p;
    p.sizeBytes = 1024;
    p.lineBytes = 64;
    p.ways = 2;
    Cache batched(p), looped(p);
    Rng rng(42);
    for (int it = 0; it < 5000; ++it) {
        uint64_t addr = (rng.next() % 64) * 64;
        uint32_t n = 1 + rng.next() % 7;
        bool hitB = batched.accessN(addr, n);
        bool hitL = looped.access(addr);
        for (uint32_t i = 1; i < n; ++i)
            looped.access(addr);
        ASSERT_EQ(hitB, hitL) << "iteration " << it;
        ASSERT_EQ(batched.hits(), looped.hits()) << "iteration " << it;
        ASSERT_EQ(batched.misses(), looped.misses()) << "iteration " << it;
    }
}

TEST(Cache, FullResetRestoresColdState)
{
    Cache c;
    c.access(0x1000);
    c.access(0x1000);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.access(0x1000)) << "line survived reset";
}

TEST(Gshare, LearnsAlwaysTaken)
{
    BranchPredParams p;
    GsharePredictor g(p);
    int correct = 0;
    for (int i = 0; i < 200; ++i)
        correct += g.predictAndUpdate(0x400000, true);
    // The first ~historyBits iterations walk fresh PHT entries while the
    // global history fills with 1s; after that prediction is perfect.
    EXPECT_GT(correct, 180);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    BranchPredParams p;
    GsharePredictor g(p);
    int correct = 0;
    for (int i = 0; i < 2000; ++i)
        correct += g.predictAndUpdate(0x400000, i % 2 == 0);
    // With history the alternating pattern becomes highly predictable.
    EXPECT_GT(correct, 1800);
}

TEST(Indirect, LearnsStableTarget)
{
    BranchPredParams p;
    p.useHistoryForBtb = false;
    IndirectPredictor ip(p);
    EXPECT_FALSE(ip.predictAndUpdate(0x400000, 0x500000, 0));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(ip.predictAndUpdate(0x400000, 0x500000, 0));
}

TEST(Indirect, ChangingTargetsMispredict)
{
    BranchPredParams p;
    p.useHistoryForBtb = false;
    IndirectPredictor ip(p);
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += ip.predictAndUpdate(0x400000, 0x500000 + (i % 7) * 64, 0);
    EXPECT_LT(correct, 30);
}

TEST(ReturnStack, MatchesCallReturn)
{
    BranchPredParams p;
    ReturnStack ras(p);
    ras.pushCall(0x1004);
    ras.pushCall(0x2004);
    EXPECT_TRUE(ras.predictReturn(0x2004));
    EXPECT_TRUE(ras.predictReturn(0x1004));
    EXPECT_FALSE(ras.predictReturn(0x3004)); // empty stack
}

TEST(CodeSpace, SegmentsAreDisjointAndAligned)
{
    CodeSpace cs;
    uint64_t a = cs.alloc(CodeSegment::Interp, 10);
    uint64_t b = cs.alloc(CodeSegment::Interp, 10);
    uint64_t r = cs.alloc(CodeSegment::Runtime, 10);
    uint64_t j = cs.alloc(CodeSegment::JitArena, 10);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_GE(b, a + 40);
    EXPECT_GT(r, b);
    EXPECT_GT(j, r);
    EXPECT_GT(cs.jitCodeBytes(), 0u);
}

TEST(Core, CountsInstructionsAndClasses)
{
    Core core;
    BlockEmitter e(core, 0x400000);
    e.alu(3);
    e.loadPtr(&core);
    e.storePtr(&core);
    e.branch(true);
    auto t = core.totalCounters();
    EXPECT_EQ(t.instructions, 6u);
    EXPECT_EQ(t.loads, 1u);
    EXPECT_EQ(t.stores, 1u);
    EXPECT_EQ(t.branches, 1u);
    EXPECT_EQ(t.condBranches, 1u);
}

TEST(Core, IpcBoundedByIssueWidth)
{
    CoreParams p;
    p.issueWidth = 4;
    Core core(p);
    BlockEmitter e(core, 0x400000);
    // Re-emit the same block so the icache warms up.
    for (int i = 0; i < 1000; ++i) {
        BlockEmitter blk(core, 0x400000);
        blk.alu(16);
    }
    double ipc = core.totalCounters().ipc();
    EXPECT_LE(ipc, 4.0);
    EXPECT_GT(ipc, 3.0); // pure ALU should get close to width
}

TEST(Core, MispredictsCostCycles)
{
    Core a, b;
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        BlockEmitter ea(a, 0x400000);
        ea.branch(true); // predictable
        BlockEmitter eb(b, 0x400000);
        eb.branch(rng.next() & 1); // random
    }
    EXPECT_LT(a.totalCounters().mpki(), 10.0);
    EXPECT_GT(b.totalCounters().mpki(), 200.0);
    EXPECT_LT(a.totalCycles(), b.totalCycles());
}

TEST(Core, BucketsSeparateCounters)
{
    Core core;
    core.setBucket(0);
    BlockEmitter e0(core, 0x400000);
    e0.alu(5);
    core.setBucket(2);
    BlockEmitter e2(core, 0x500000);
    e2.alu(7);
    EXPECT_EQ(core.bucketCounters(0).instructions, 5u);
    EXPECT_EQ(core.bucketCounters(2).instructions, 7u);
    EXPECT_EQ(core.totalInstructions(), 12u);
}

class RecordingSink : public AnnotSink
{
  public:
    std::vector<std::pair<uint32_t, uint32_t>> seen;
    void
    onAnnot(uint32_t tag, uint32_t payload) override
    {
        seen.emplace_back(tag, payload);
    }
};

TEST(Core, AnnotationsReachSinkAndAreFree)
{
    Core core;
    RecordingSink sink;
    core.setAnnotSink(&sink);
    BlockEmitter e(core, 0x400000);
    e.annot(7, 1234);
    e.annot(8, 0);
    ASSERT_EQ(sink.seen.size(), 2u);
    EXPECT_EQ(sink.seen[0], std::make_pair(7u, 1234u));
    // Annotations are metadata: not retired instructions, no cycles.
    EXPECT_EQ(core.totalInstructions(), 0u);
    EXPECT_EQ(core.totalCycles(), 0.0);
    EXPECT_EQ(core.totalCounters().annotations, 2u);
}

TEST(Core, AnnotCostAblation)
{
    CoreParams p;
    p.annotCostFp = kCycleFp; // one full cycle per annotation
    Core core(p);
    BlockEmitter e(core, 0x400000);
    e.annot(1, 0);
    EXPECT_DOUBLE_EQ(core.totalCycles(), 1.0);
}

TEST(Core, SecondsUsesFrequency)
{
    CoreParams p;
    p.frequencyGhz = 1.0;
    Core core(p);
    for (int i = 0; i < 1000; ++i) {
        BlockEmitter e(core, 0x400000);
        e.alu(4);
    }
    EXPECT_NEAR(core.seconds(), core.totalCycles() / 1e9, 1e-15);
}

TEST(Core, ResetStats)
{
    Core core;
    BlockEmitter e(core, 0x400000);
    e.alu(5);
    core.resetStats();
    EXPECT_EQ(core.totalInstructions(), 0u);
    EXPECT_EQ(core.totalCycles(), 0.0);
}

TEST(Core, ResetStatsClearsMicroarchState)
{
    // Regression: resetStats() must also reset predictor history and
    // cache contents, so a replayed stream reproduces a fresh core's
    // counters exactly (mispredicts and cache misses included).
    auto stream = [](Core &core) {
        Rng rng(7);
        for (int i = 0; i < 5000; ++i) {
            BlockEmitter e(core, 0x400000 + (rng.next() % 16) * 0x40);
            e.alu(1 + int(rng.next() % 4));
            e.loadPtr(&core, 1);
            e.branch(rng.next() & 1);
            e.indirectJump(0x410000 + (rng.next() % 8) * 0x100);
        }
    };

    Core replayed, fresh;
    stream(replayed); // warm predictors, caches, LRU clocks
    replayed.resetStats();
    stream(replayed);
    stream(fresh);

    PerfCounters a = replayed.totalCounters();
    PerfCounters b = fresh.totalCounters();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cyclesFp, b.cyclesFp);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
}

TEST(Core, DispatchLoopIndirectPredictability)
{
    // An interpreter-style dispatch loop over a repeating "bytecode"
    // sequence: the BTB + history should learn the repeating pattern
    // far better than a random one.
    Core regular, random;
    Rng rng(17);
    const uint64_t dispatch_pc = 0x400000;
    auto handler_pc = [](int op) { return 0x410000 + op * 0x100; };

    for (int it = 0; it < 30000; ++it) {
        int op_reg = it % 4;
        BlockEmitter er(regular, dispatch_pc);
        er.indirectJump(handler_pc(op_reg));
        int op_rnd = rng.nextBelow(16);
        BlockEmitter ex(random, dispatch_pc);
        ex.indirectJump(handler_pc(op_rnd));
    }
    double miss_regular = regular.totalCounters().branchMissRate();
    double miss_random = random.totalCounters().branchMissRate();
    EXPECT_LT(miss_regular, 0.15);
    EXPECT_GT(miss_random, 0.5);
}

TEST(PerfCounters, DerivedMetrics)
{
    PerfCounters c;
    c.instructions = 2000;
    c.cyclesFp = 1000 * kCycleFp;
    c.branches = 200;
    c.mispredicts = 10;
    EXPECT_DOUBLE_EQ(c.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(c.mpki(), 5.0);
    EXPECT_DOUBLE_EQ(c.branchRate(), 0.1);
    EXPECT_DOUBLE_EQ(c.branchMissRate(), 0.05);
}

} // namespace
} // namespace sim
} // namespace xlvm
