/**
 * @file
 * Micro-op pre-lowering and superinstruction-fusion tests.
 *
 * The engine's load-bearing invariant is that fusion (and pre-lowering
 * in general) changes host dispatch only — every modeled counter must be
 * bit-identical with fusion on or off. The differential tests here run
 * the same traces and the same end-to-end workload under both settings
 * (via the JitParams toggle and via the XLVM_NO_FUSE escape hatch) and
 * compare results and counters exactly. The unit tests pin down the
 * pre-decoder's register-file layout and the fusion pass's pairing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/runner.h"
#include "jit/opt.h"
#include "jit/recorder.h"
#include "vm/context.h"

namespace xlvm {
namespace vm {
namespace {

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::MOp;
using jit::RtVal;

jit::Snapshot
frameSnap(void *code, uint32_t pc, std::vector<int32_t> stack)
{
    jit::Snapshot s;
    jit::FrameSnapshot f;
    f.code = code;
    f.pc = pc;
    f.stack = std::move(stack);
    s.frames.push_back(std::move(f));
    return s;
}

/** The canonical boxed counting loop (see test_vm.cc). */
jit::Trace *
registerCountingLoop(VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 7, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    EXPECT_TRUE(rec.atMergePoint(0, [&] {
        return frameSnap(code, 7, {in0});
    }));
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});

    jit::OptParams op;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<obj::W_Object *>(p)->typeId())
                 : 0u;
    };
    auto optimized =
        std::make_unique<jit::Trace>(jit::optimize(rec.take(), op));
    optimized->id = ctx.registry.nextId();
    ctx.backend.compile(*optimized);
    return ctx.registry.add(std::move(optimized));
}

VmConfig
configWithFusion(bool fuse)
{
    VmConfig cfg;
    cfg.jit.fuseMicroOps = fuse;
    return cfg;
}

// ---- pre-decoder unit tests ------------------------------------------

TEST(MicroOpLowering, RegisterFileLayoutAndConstMapping)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 10);
    const jit::MicroProgram &prog = ctx.backend.program(t->id);

    // Unified register file: boxes first, then materialized constants.
    EXPECT_EQ(prog.constBase, t->boxTypes.size());
    EXPECT_EQ(prog.numConsts, t->consts.size());
    EXPECT_EQ(prog.numRegs, prog.constBase + prog.numConsts);

    // Every pre-decoded operand index is in range, and const operands
    // landed in the tail: int_lt's second arg is the constant limit.
    bool sawConstOperand = false;
    for (const jit::MicroOp &m : prog.ops) {
        for (int i = 0; i < jit::kMaxOpArgs; ++i) {
            if (!(m.argMask & (1u << i)))
                continue;
            EXPECT_LT(m.arg[i], prog.numRegs);
            if (m.arg[i] >= prog.constBase)
                sawConstOperand = true;
        }
    }
    EXPECT_TRUE(sawConstOperand);
}

TEST(MicroOpLowering, ProgramEndsInTrapSentinel)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 10);
    const jit::MicroProgram &prog = ctx.backend.program(t->id);
    ASSERT_FALSE(prog.ops.empty());
    EXPECT_EQ(MOp(prog.ops.back().opcode), MOp::TrapEnd);
}

TEST(MicroOpLowering, FusesComparePairsWhenEnabled)
{
    VmContext on(configWithFusion(true));
    VmContext off(configWithFusion(false));
    int codeOn, codeOff;
    jit::Trace *tOn = registerCountingLoop(on, &codeOn, 10);
    jit::Trace *tOff = registerCountingLoop(off, &codeOff, 10);

    const jit::MicroProgram &pOn = on.backend.program(tOn->id);
    const jit::MicroProgram &pOff = off.backend.program(tOff->id);

    // int_lt+guard_true and int_add_ovf+guard_no_overflow must fuse.
    EXPECT_GE(pOn.fusedPairs, 2u);
    EXPECT_EQ(pOff.fusedPairs, 0u);
    // Each fused pair removes one micro-op from the stream.
    EXPECT_EQ(pOn.ops.size() + pOn.fusedPairs, pOff.ops.size());

    bool sawFused = false;
    for (const jit::MicroOp &m : pOn.ops)
        sawFused |= jit::isFusedMOp(MOp(m.opcode));
    EXPECT_TRUE(sawFused);
    for (const jit::MicroOp &m : pOff.ops)
        EXPECT_FALSE(jit::isFusedMOp(MOp(m.opcode)));
}

TEST(MicroOpLowering, FusedOpCarriesGuardMetadata)
{
    VmContext ctx;
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 10);
    const jit::MicroProgram &prog = ctx.backend.program(t->id);
    for (const jit::MicroOp &m : prog.ops) {
        if (!jit::isFusedMOp(MOp(m.opcode)))
            continue;
        // The guard constituent is the following IR op; deopt metadata
        // (guard index, snapshot, code offset) must point at it.
        EXPECT_EQ(m.guardIdx, m.origIdx + 1);
        EXPECT_GE(m.snapshotIdx, 0);
        EXPECT_GT(m.pcOff2, m.pcOff);
    }
}

TEST(MicroOpLowering, EnvEscapeHatchDisablesFusion)
{
    setenv("XLVM_NO_FUSE", "1", 1);
    VmContext ctx; // fuseMicroOps defaults to true; env must override
    int code;
    jit::Trace *t = registerCountingLoop(ctx, &code, 10);
    EXPECT_EQ(ctx.backend.program(t->id).fusedPairs, 0u);
    unsetenv("XLVM_NO_FUSE");

    VmContext ctx2;
    int code2;
    jit::Trace *t2 = registerCountingLoop(ctx2, &code2, 10);
    EXPECT_GE(ctx2.backend.program(t2->id).fusedPairs, 2u);
}

// ---- differential: fusion must not change any observable -------------

TEST(FusionDifferential, HandBuiltLoopResultsAndCountersIdentical)
{
    const int64_t limit = 5000;
    VmContext on(configWithFusion(true));
    VmContext off(configWithFusion(false));
    int codeOn, codeOff;
    jit::Trace *tOn = registerCountingLoop(on, &codeOn, limit);
    jit::Trace *tOff = registerCountingLoop(off, &codeOff, limit);
    ASSERT_GE(on.backend.program(tOn->id).fusedPairs, 2u);

    DeoptResult rOn =
        on.executor.run(*tOn, {RtVal::fromRef(on.space.newInt(0))});
    DeoptResult rOff =
        off.executor.run(*tOff, {RtVal::fromRef(off.space.newInt(0))});

    // Same architectural result...
    ASSERT_EQ(rOn.frames.size(), 1u);
    ASSERT_EQ(rOff.frames.size(), 1u);
    ASSERT_EQ(rOn.frames[0].stack.size(), 1u);
    EXPECT_EQ(
        static_cast<obj::W_Int *>(rOn.frames[0].stack[0])->value,
        static_cast<obj::W_Int *>(rOff.frames[0].stack[0])->value);
    EXPECT_EQ(rOn.guardOpIdx, rOff.guardOpIdx);

    // ...and a bit-identical modeled machine.
    sim::PerfCounters cOn = on.core.totalCounters();
    sim::PerfCounters cOff = off.core.totalCounters();
    EXPECT_EQ(cOn.instructions, cOff.instructions);
    EXPECT_EQ(cOn.cycles(), cOff.cycles());
    EXPECT_EQ(on.executor.deoptCount(), off.executor.deoptCount());
    EXPECT_EQ(on.executor.iterationCount(),
              off.executor.iterationCount());
}

TEST(FusionDifferential, EndToEndWorkloadCountersIdentical)
{
    driver::RunOptions base;
    base.workload = "crypto_pyaes";
    base.scale = 60;
    base.vm = driver::VmKind::PyPyJit;
    base.loopThreshold = 60;

    driver::RunOptions fused = base;
    fused.jitFuseMicroOps = true;
    driver::RunOptions unfused = base;
    unfused.jitFuseMicroOps = false;

    driver::RunResult a = driver::runWorkload(fused);
    driver::RunResult b = driver::runWorkload(unfused);

    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.deopts, b.deopts);
    EXPECT_EQ(a.traceEnters, b.traceEnters);
    EXPECT_EQ(a.loopsCompiled, b.loopsCompiled);
    EXPECT_EQ(a.bridgesCompiled, b.bridgesCompiled);
    EXPECT_EQ(a.gcMinor, b.gcMinor);
    EXPECT_EQ(a.gcMajor, b.gcMajor);
    EXPECT_EQ(a.gcAllocations, b.gcAllocations);
    EXPECT_EQ(a.icacheHits, b.icacheHits);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheHits, b.dcacheHits);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.work, b.work);
}

} // namespace
} // namespace vm
} // namespace xlvm
