/**
 * @file
 * Figure 2 — breakdown of execution time by framework phase for each
 * PyPy-suite workload (stacked percentage of interp / tracing / jit /
 * jit-call / gc / blackhole).
 *
 * Shape to reproduce: every phase except blackhole dominates at least
 * one benchmark; JIT and JIT-call dominate the fast benchmarks;
 * interpreter dominates the branchy symbolic ones.
 */

#include "bench_common.h"
#include "xlayer/phase.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig2", argc, argv);
    std::printf("Figure 2: time spent in each phase (%% of cycles)\n");
    std::printf("%-20s %7s %8s %6s %9s %6s %10s\n", "Benchmark",
                "interp", "tracing", "jit", "jit-call", "gc",
                "blackhole");
    printRule(78);

    const std::vector<std::string> names =
        selectWorkloads(figureWorkloads(), argc, argv);
    std::vector<driver::RunOptions> runs;
    for (const std::string &name : names)
        runs.push_back(baseOptions(name, driver::VmKind::PyPyJit));
    std::vector<driver::RunResult> res = session.sweep(runs);

    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const driver::RunResult &r = res[i];
        auto pct = [&](xlayer::Phase p) {
            return 100.0 * r.phaseShares[uint32_t(p)];
        };
        std::printf("%-20s %6.1f%% %7.1f%% %5.1f%% %8.1f%% %5.1f%% "
                    "%9.1f%%\n",
                    name.c_str(), pct(xlayer::Phase::Interpreter),
                    pct(xlayer::Phase::Tracing), pct(xlayer::Phase::Jit),
                    pct(xlayer::Phase::JitCall), pct(xlayer::Phase::Gc),
                    pct(xlayer::Phase::Blackhole));
    }
    printRule(78);
    return session.finish();
}
