/**
 * @file
 * Host-side microbenchmarks for the trace execution engine: wall-clock
 * throughput of TraceExecutor::run over hand-built hot traces (the same
 * canonical loops the vm-layer unit tests use). This is the benchmark
 * the threaded-code/micro-op engine's speedup target is measured on.
 *
 * The fusion on/off variants toggle superinstruction fusion through the
 * XLVM_NO_FUSE environment escape hatch (checked at Backend::compile
 * time), so the source also builds against engines that predate the
 * in-config toggle — which is exactly what the before/after comparison
 * needs.
 *
 * The BM_SimStream_* group isolates the simulation layer: the same hot
 * trace body is pushed through a bare sim::Core under each acceleration
 * tier (per-record stepping, batched consumeStream, block memoization,
 * superblock replay) with no executor dispatch in the loop. The
 * superblock speedup target is measured here — in the end-to-end
 * BM_TraceExec_* numbers host-side micro-op dispatch dominates and
 * caps the visible gain. Every variant exports modeled_cpi, a
 * deterministic modeled-cost counter (cycles per simulated
 * instruction); xlvm-bench-guard pins it, so an accelerator that
 * drifts the model fails the gate even if it wins wall-clock.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "jit/opt.h"
#include "jit/recorder.h"
#include "sim/block_memo.h"
#include "sim/emitter.h"
#include "vm/context.h"
#include "xlayer/sampler.h"

namespace {

using namespace xlvm;

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::RtVal;

jit::Snapshot
frameSnap(void *code, uint32_t pc, std::vector<int32_t> stack)
{
    jit::Snapshot s;
    jit::FrameSnapshot f;
    f.code = code;
    f.pc = pc;
    f.stack = std::move(stack);
    s.frames.push_back(std::move(f));
    return s;
}

jit::Trace *
registerTrace(vm::VmContext &ctx, jit::Recorder &rec)
{
    jit::OptParams op;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<obj::W_Object *>(p)->typeId())
                 : 0u;
    };
    auto optimized =
        std::make_unique<jit::Trace>(jit::optimize(rec.take(), op));
    optimized->id = ctx.registry.nextId();
    ctx.backend.compile(*optimized);
    return ctx.registry.add(std::move(optimized));
}

/**
 * "while i < limit: i += 1" over boxed ints — the canonical meta-trace
 * (guard_class, getfield, int_lt+guard_true, int_add_ovf+guard_no_
 * overflow, virtualized re-box, jump). The hot int-arithmetic loop.
 */
jit::Trace *
buildCountingLoop(vm::VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 7, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    rec.atMergePoint(0, [&] { return frameSnap(code, 7, {in0}); });
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});
    return registerTrace(ctx, rec);
}

/**
 * A branchy, guard-heavy loop body: five guards per iteration (four of
 * them fusible compare→guard / ovf→guard pairs), plus masking
 * arithmetic between them. Models the polymorphic-dispatch-style traces
 * where dispatch overhead, not arithmetic, dominates.
 */
jit::Trace *
buildBranchyLoop(vm::VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 11, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    rec.atMergePoint(0, [&] { return frameSnap(code, 11, {in0}); });
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t low = rec.emit(IrOp::IntAnd, v, rec.constInt(0xff));
    int32_t nonneg = rec.emit(IrOp::IntGe, low, rec.constInt(0));
    rec.guardTrue(nonneg);
    int32_t sentinel = rec.emit(IrOp::IntEq, v, rec.constInt(-1));
    rec.guardFalse(sentinel);
    int32_t mix = rec.emit(IrOp::IntXor, low, rec.constInt(0x55));
    int32_t bounded = rec.emit(IrOp::IntLe, mix, rec.constInt(0xff));
    rec.guardTrue(bounded);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});
    return registerTrace(ctx, rec);
}

constexpr int64_t kIters = 4096; ///< loop iterations per executor entry

/** RAII toggle for the XLVM_NO_FUSE escape hatch. */
struct ScopedNoFuse
{
    explicit ScopedNoFuse(bool disable)
    {
        if (disable)
            setenv("XLVM_NO_FUSE", "1", 1);
        else
            unsetenv("XLVM_NO_FUSE");
    }
    ~ScopedNoFuse() { unsetenv("XLVM_NO_FUSE"); }
};

/** RAII toggle for the XLVM_NO_SIM_MEMO escape hatch (checked at Core
 *  construction time, i.e. when VmContext is built). */
struct ScopedNoMemo
{
    explicit ScopedNoMemo(bool disable)
    {
        if (disable)
            setenv("XLVM_NO_SIM_MEMO", "1", 1);
        else
            unsetenv("XLVM_NO_SIM_MEMO");
    }
    ~ScopedNoMemo() { unsetenv("XLVM_NO_SIM_MEMO"); }
};

/** RAII toggle for the XLVM_NO_SIM_SUPERBLOCK escape hatch (also
 *  checked at Core construction time). */
struct ScopedNoSuperblock
{
    explicit ScopedNoSuperblock(bool disable)
    {
        if (disable)
            setenv("XLVM_NO_SIM_SUPERBLOCK", "1", 1);
        else
            unsetenv("XLVM_NO_SIM_SUPERBLOCK");
    }
    ~ScopedNoSuperblock() { unsetenv("XLVM_NO_SIM_SUPERBLOCK"); }
};

/** Modeled cycles per simulated instruction — deterministic for a given
 *  workload, so the bench guard pins it against accelerator drift. */
double
modeledCpi(const sim::Core &core)
{
    sim::PerfCounters pc = core.totalCounters();
    if (pc.instructions == 0)
        return 0.0;
    return double(pc.cyclesFp) /
           (double(sim::kCycleFp) * double(pc.instructions));
}

void
runTraceExecBench(benchmark::State &state,
                  jit::Trace *(*build)(vm::VmContext &, void *, int64_t),
                  bool noFuse, bool noMemo = false,
                  bool noSuperblock = false)
{
    ScopedNoFuse guard(noFuse);
    ScopedNoMemo memoGuard(noMemo);
    ScopedNoSuperblock sbGuard(noSuperblock);
    vm::VmContext ctx;
    int code;
    jit::Trace *t = build(ctx, &code, kIters);
    for (auto _ : state) {
        obj::W_Int *start = ctx.space.newInt(0);
        vm::DeoptResult res =
            ctx.executor.run(*t, {RtVal::fromRef(start)});
        benchmark::DoNotOptimize(res.frames.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * kIters);
    state.counters["deopts"] =
        benchmark::Counter(double(ctx.executor.deoptCount()));
    sim::MemoStats ms = ctx.core.memoStats();
    state.counters["memo_hit_rate"] = benchmark::Counter(ms.hitRate());
    state.counters["sb_hit_rate"] =
        benchmark::Counter(ctx.core.superblockStats().hitRate());
    state.counters["modeled_cpi"] = benchmark::Counter(modeledCpi(ctx.core));
}

void
BM_TraceExec_HotLoop(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, false);
}
BENCHMARK(BM_TraceExec_HotLoop);

void
BM_TraceExec_HotLoop_NoFuse(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, true);
}
BENCHMARK(BM_TraceExec_HotLoop_NoFuse);

void
BM_TraceExec_HotLoop_NoMemo(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, false, true);
}
BENCHMARK(BM_TraceExec_HotLoop_NoMemo);

void
BM_TraceExec_HotLoop_NoSuperblock(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, false, false, true);
}
BENCHMARK(BM_TraceExec_HotLoop_NoSuperblock);

void
BM_TraceExec_Branchy(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, false);
}
BENCHMARK(BM_TraceExec_Branchy);

void
BM_TraceExec_Branchy_NoFuse(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, true);
}
BENCHMARK(BM_TraceExec_Branchy_NoFuse);

void
BM_TraceExec_Branchy_NoMemo(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, false, true);
}
BENCHMARK(BM_TraceExec_Branchy_NoMemo);

void
BM_TraceExec_Branchy_NoSuperblock(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, false, false, true);
}
BENCHMARK(BM_TraceExec_Branchy_NoSuperblock);

// ---- sim-layer acceleration-tier microbenchmarks ----------------------

/**
 * The hot trace body the sim-layer tiers race on, parameterized by
 * shape: @p units repetitions of {alu(aluRun), load every loadEvery-th
 * unit, taken branch}. Length is exactly where trace-level replay
 * separates from block-level granularity: past BlockMemo::kMaxRecs
 * (512 records) the block layer tombstones the block and steps every
 * instruction, while the superblock still replays the whole iteration
 * from one segment. The load density controls how much of the deferred
 * path is live address translation (which replay must keep, for GC
 * exactness) versus pure signature compares — optimized numeric
 * meta-traces land near the sparse end after allocation removal.
 */
struct SimBodyShape
{
    int units;
    int aluRun;
    int loadEvery; ///< a unit emits a load when u % loadEvery == 0

    int
    instsPerIter() const
    {
        int loads = (units + loadEvery - 1) / loadEvery;
        return units * (aluRun + 1) + loads;
    }
};

constexpr uint64_t kSimPc = 0x400000;

void
emitSimBody(sim::Core &c, const SimBodyShape &shape, const void *p1,
            const void *p2)
{
    sim::BlockEmitter e(c, kSimPc);
    for (int u = 0; u < shape.units; ++u) {
        e.alu(uint32_t(shape.aluRun));
        if (u % shape.loadEvery == 0)
            e.loadPtr((u & 1) ? p2 : p1);
        e.branch(true);
    }
}

/** The baked record stream matching emitSimBody (what jit::bakeSimStream
 *  derives at lowering time, built by hand here). */
struct SimBodyStream
{
    std::vector<uint64_t> sigs;
    std::vector<uint32_t> pcOff;
    std::vector<uint32_t> memIdx;

    explicit SimBodyStream(const SimBodyShape &shape)
    {
        using sim::InstClass;
        auto rec = [&](uint64_t sig, uint32_t off, bool mem) {
            if (mem)
                memIdx.push_back(uint32_t(sigs.size()));
            sigs.push_back(sig);
            pcOff.push_back(off);
        };
        uint32_t off = 0;
        for (int u = 0; u < shape.units; ++u) {
            rec(sim::memoSigStraight(InstClass::IntAlu, 0,
                                     uint32_t(shape.aluRun)),
                off, false);
            off += 4u * uint32_t(shape.aluRun);
            if (u % shape.loadEvery == 0) {
                rec(sim::memoSigInst(InstClass::Load, 0, false), off,
                    true);
                off += 4;
            }
            rec(sim::memoSigInst(InstClass::Branch, 0, true), off,
                false);
            off += 4;
        }
    }

    sim::StreamView
    view() const
    {
        sim::StreamView v;
        v.sigs = sigs.data();
        v.pcOff = pcOff.data();
        v.memIdx = memIdx.data();
        v.nRecs = uint32_t(sigs.size());
        v.nMem = uint32_t(memIdx.size());
        v.codePc = kSimPc;
        v.streamId = 1;
        v.eligible = true;
        return v;
    }
};

SimBodyShape
shapeFromState(const benchmark::State &state)
{
    SimBodyShape s;
    s.units = int(state.range(0));
    s.aluRun = int(state.range(1));
    s.loadEvery = int(state.range(2));
    return s;
}

// {units, aluRun, loadEvery}: a short mixed loop body; a typical
// optimized meta-trace (384 records, still block-memoizable); a long
// mixed trace past the block-memo record cap; and a long compute-dense
// trace (sparse loads after allocation removal) — the regime the
// superblock speedup target is measured in.
#define SIM_STREAM_SHAPES                                                \
    ->Args({16, 4, 1})->Args({128, 4, 1})->Args({256, 4, 1})             \
    ->Args({256, 16, 4})

/** The cheapest possible sample consumer — isolates the core-side cost
 *  of an armed sampler (the countdown on every charge plus the sample
 *  deliveries) from any profile-building work on top. */
struct CountingSampleSink final : sim::CycleSampleSink
{
    uint64_t samples = 0;

    void
    onCycleSample(uint64_t, uint32_t, uint64_t, uint64_t) override
    {
        ++samples;
    }
};

/** Emission-driven tiers: stepping, block memo, superblock sweep. An
 *  optional armed @p sink measures sampler overhead on the same body
 *  (xlvm-bench-guard's --max-sampler-overhead compares the Prof
 *  variant's cpu_time against the plain superblock sweep). */
void
runSimStreamBench(benchmark::State &state, bool memo, bool superblock,
                  CountingSampleSink *sink = nullptr)
{
    const SimBodyShape shape = shapeFromState(state);
    sim::CoreParams p;
    p.simMemo = memo;
    p.simSuperblock = superblock;
    sim::Core core(p);
    if (sink) {
        core.armSampler(sink, xlayer::kDefaultSampleIntervalCycles *
                                  sim::kCycleFp);
    }
    SimBodyStream stream(shape);
    int obj1 = 0, obj2 = 0;
    core.memoSetStream(stream.view());
    core.memoSessionBegin(uint32_t(stream.sigs.size()));
    for (auto _ : state) {
        emitSimBody(core, shape, &obj1, &obj2);
        core.memoBoundary();
    }
    core.memoSessionEnd();
    if (sink)
        core.armSampler(nullptr, 0);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            shape.instsPerIter());
    state.counters["memo_hit_rate"] =
        benchmark::Counter(core.memoStats().hitRate());
    state.counters["sb_hit_rate"] =
        benchmark::Counter(core.superblockStats().hitRate());
    state.counters["modeled_cpi"] = benchmark::Counter(modeledCpi(core));
    if (sink)
        state.counters["samples"] = benchmark::Counter(double(sink->samples));
}

void
BM_SimStream_Stepped(benchmark::State &state)
{
    runSimStreamBench(state, false, false);
}
BENCHMARK(BM_SimStream_Stepped) SIM_STREAM_SHAPES;

void
BM_SimStream_BlockMemo(benchmark::State &state)
{
    runSimStreamBench(state, true, false);
}
BENCHMARK(BM_SimStream_BlockMemo) SIM_STREAM_SHAPES;

void
BM_SimStream_Superblock(benchmark::State &state)
{
    runSimStreamBench(state, true, true);
}
BENCHMARK(BM_SimStream_Superblock) SIM_STREAM_SHAPES;

/** Superblock sweep with the deterministic cycle sampler armed at the
 *  default interval, delivering into a counting sink. */
void
BM_SimStream_SuperblockProf(benchmark::State &state)
{
    CountingSampleSink sink;
    runSimStreamBench(state, true, true, &sink);
}
BENCHMARK(BM_SimStream_SuperblockProf) SIM_STREAM_SHAPES;

/** The non-replayable fallback: one batched consumeStream pass per
 *  iteration over the baked SoA stream (no memo layer at all), with
 *  per-iteration address translation exactly as emission would do it. */
void
BM_SimStream_BatchedConsume(benchmark::State &state)
{
    const SimBodyShape shape = shapeFromState(state);
    sim::CoreParams p;
    p.simMemo = false;
    sim::Core core(p);
    SimBodyStream stream(shape);
    sim::StreamView v = stream.view();
    int obj1 = 0, obj2 = 0;
    std::vector<uint64_t> addrs;
    addrs.resize(v.nMem);
    for (auto _ : state) {
        uint32_t m = 0;
        for (int u = 0; u < shape.units; u += shape.loadEvery)
            addrs[m++] = core.dataAddr((u & 1) ? &obj2 : &obj1);
        core.consumeStream(v, addrs.data(), m);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            shape.instsPerIter());
    state.counters["modeled_cpi"] = benchmark::Counter(modeledCpi(core));
}
BENCHMARK(BM_SimStream_BatchedConsume) SIM_STREAM_SHAPES;

} // namespace

BENCHMARK_MAIN();
