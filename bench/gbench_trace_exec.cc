/**
 * @file
 * Host-side microbenchmarks for the trace execution engine: wall-clock
 * throughput of TraceExecutor::run over hand-built hot traces (the same
 * canonical loops the vm-layer unit tests use). This is the benchmark
 * the threaded-code/micro-op engine's speedup target is measured on.
 *
 * The fusion on/off variants toggle superinstruction fusion through the
 * XLVM_NO_FUSE environment escape hatch (checked at Backend::compile
 * time), so the source also builds against engines that predate the
 * in-config toggle — which is exactly what the before/after comparison
 * needs.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "jit/opt.h"
#include "jit/recorder.h"
#include "sim/block_memo.h"
#include "vm/context.h"

namespace {

using namespace xlvm;

using jit::BoxType;
using jit::IrOp;
using jit::kNoArg;
using jit::RtVal;

jit::Snapshot
frameSnap(void *code, uint32_t pc, std::vector<int32_t> stack)
{
    jit::Snapshot s;
    jit::FrameSnapshot f;
    f.code = code;
    f.pc = pc;
    f.stack = std::move(stack);
    s.frames.push_back(std::move(f));
    return s;
}

jit::Trace *
registerTrace(vm::VmContext &ctx, jit::Recorder &rec)
{
    jit::OptParams op;
    op.classOf = [](void *p) {
        return p ? uint32_t(static_cast<obj::W_Object *>(p)->typeId())
                 : 0u;
    };
    auto optimized =
        std::make_unique<jit::Trace>(jit::optimize(rec.take(), op));
    optimized->id = ctx.registry.nextId();
    ctx.backend.compile(*optimized);
    return ctx.registry.add(std::move(optimized));
}

/**
 * "while i < limit: i += 1" over boxed ints — the canonical meta-trace
 * (guard_class, getfield, int_lt+guard_true, int_add_ovf+guard_no_
 * overflow, virtualized re-box, jump). The hot int-arithmetic loop.
 */
jit::Trace *
buildCountingLoop(vm::VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 7, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    rec.atMergePoint(0, [&] { return frameSnap(code, 7, {in0}); });
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});
    return registerTrace(ctx, rec);
}

/**
 * A branchy, guard-heavy loop body: five guards per iteration (four of
 * them fusible compare→guard / ovf→guard pairs), plus masking
 * arithmetic between them. Models the polymorphic-dispatch-style traces
 * where dispatch overhead, not arithmetic, dominates.
 */
jit::Trace *
buildBranchyLoop(vm::VmContext &ctx, void *code, int64_t limit)
{
    jit::Recorder rec(code, 11, false);
    rec.setAnchorLocals(1);
    obj::W_Int *seed = ctx.space.newInt(0);
    int32_t in0 = rec.addInputRef(seed);
    rec.atMergePoint(0, [&] { return frameSnap(code, 11, {in0}); });
    rec.guardClass(in0, obj::kTypeInt);
    int32_t v = rec.emitTyped(IrOp::GetfieldGc, BoxType::Int, in0,
                              kNoArg, kNoArg, obj::kFieldValue);
    int32_t cmp = rec.emit(IrOp::IntLt, v, rec.constInt(limit));
    rec.guardTrue(cmp);
    int32_t low = rec.emit(IrOp::IntAnd, v, rec.constInt(0xff));
    int32_t nonneg = rec.emit(IrOp::IntGe, low, rec.constInt(0));
    rec.guardTrue(nonneg);
    int32_t sentinel = rec.emit(IrOp::IntEq, v, rec.constInt(-1));
    rec.guardFalse(sentinel);
    int32_t mix = rec.emit(IrOp::IntXor, low, rec.constInt(0x55));
    int32_t bounded = rec.emit(IrOp::IntLe, mix, rec.constInt(0xff));
    rec.guardTrue(bounded);
    int32_t next = rec.emit(IrOp::IntAddOvf, v, rec.constInt(1));
    rec.guardNoOverflow();
    int32_t box = rec.emit(IrOp::NewWithVtable, kNoArg, kNoArg, kNoArg,
                           obj::kTypeInt);
    rec.emit(IrOp::SetfieldGc, box, next, kNoArg, obj::kFieldValue);
    rec.closeLoop({box});
    return registerTrace(ctx, rec);
}

constexpr int64_t kIters = 4096; ///< loop iterations per executor entry

/** RAII toggle for the XLVM_NO_FUSE escape hatch. */
struct ScopedNoFuse
{
    explicit ScopedNoFuse(bool disable)
    {
        if (disable)
            setenv("XLVM_NO_FUSE", "1", 1);
        else
            unsetenv("XLVM_NO_FUSE");
    }
    ~ScopedNoFuse() { unsetenv("XLVM_NO_FUSE"); }
};

/** RAII toggle for the XLVM_NO_SIM_MEMO escape hatch (checked at Core
 *  construction time, i.e. when VmContext is built). */
struct ScopedNoMemo
{
    explicit ScopedNoMemo(bool disable)
    {
        if (disable)
            setenv("XLVM_NO_SIM_MEMO", "1", 1);
        else
            unsetenv("XLVM_NO_SIM_MEMO");
    }
    ~ScopedNoMemo() { unsetenv("XLVM_NO_SIM_MEMO"); }
};

void
runTraceExecBench(benchmark::State &state,
                  jit::Trace *(*build)(vm::VmContext &, void *, int64_t),
                  bool noFuse, bool noMemo = false)
{
    ScopedNoFuse guard(noFuse);
    ScopedNoMemo memoGuard(noMemo);
    vm::VmContext ctx;
    int code;
    jit::Trace *t = build(ctx, &code, kIters);
    for (auto _ : state) {
        obj::W_Int *start = ctx.space.newInt(0);
        vm::DeoptResult res =
            ctx.executor.run(*t, {RtVal::fromRef(start)});
        benchmark::DoNotOptimize(res.frames.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * kIters);
    state.counters["deopts"] =
        benchmark::Counter(double(ctx.executor.deoptCount()));
    sim::MemoStats ms = ctx.core.memoStats();
    state.counters["memo_hit_rate"] = benchmark::Counter(ms.hitRate());
}

void
BM_TraceExec_HotLoop(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, false);
}
BENCHMARK(BM_TraceExec_HotLoop);

void
BM_TraceExec_HotLoop_NoFuse(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, true);
}
BENCHMARK(BM_TraceExec_HotLoop_NoFuse);

void
BM_TraceExec_HotLoop_NoMemo(benchmark::State &state)
{
    runTraceExecBench(state, buildCountingLoop, false, true);
}
BENCHMARK(BM_TraceExec_HotLoop_NoMemo);

void
BM_TraceExec_Branchy(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, false);
}
BENCHMARK(BM_TraceExec_Branchy);

void
BM_TraceExec_Branchy_NoFuse(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, true);
}
BENCHMARK(BM_TraceExec_Branchy_NoFuse);

void
BM_TraceExec_Branchy_NoMemo(benchmark::State &state)
{
    runTraceExecBench(state, buildBranchyLoop, false, true);
}
BENCHMARK(BM_TraceExec_Branchy_NoMemo);

} // namespace

BENCHMARK_MAIN();
