/**
 * @file
 * Figure 6 — JIT IR node compilation and execution statistics:
 *   (a) total IR nodes compiled per benchmark;
 *   (b) fraction of compiled IR nodes covering 95% of the dynamic IR
 *       executions ("hotness" concentration);
 *   (c) dynamic IR nodes executed per million instructions.
 *
 * Shape to reproduce: compiled counts vary by orders of magnitude;
 * hot-region benchmarks need only a few percent of nodes for 95% of
 * execution; the fastest benchmarks execute the most IR nodes per
 * instruction.
 */

#include "bench_common.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig6", argc, argv);
    std::printf("Figure 6: JIT IR node statistics\n");
    std::printf("%-20s %12s %18s %18s\n", "Benchmark", "(a) compiled",
                "(b) %% for 95%% exec", "(c) exec/Minstr");
    printRule(74);

    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunOptions o = baseOptions(name, driver::VmKind::PyPyJit);
        o.irAnnotations = true;
        driver::RunResult r = session.run(o);

        // (b): sort node executions descending; count nodes covering 95%.
        std::vector<uint64_t> execs = r.irExecCounts;
        std::sort(execs.begin(), execs.end(),
                  std::greater<uint64_t>());
        uint64_t total = 0;
        for (uint64_t e : execs)
            total += e;
        double pctFor95 = 0;
        if (total > 0 && r.irNodesCompiled > 0) {
            uint64_t acc = 0;
            uint32_t used = 0;
            for (uint64_t e : execs) {
                acc += e;
                ++used;
                if (double(acc) >= 0.95 * double(total))
                    break;
            }
            pctFor95 = 100.0 * used / r.irNodesCompiled;
        }
        double perM = r.instructions
                          ? 1e6 * double(total) / r.instructions
                          : 0;
        std::printf("%-20s %12s %17.1f%% %18s\n", name.c_str(),
                    formatCount(r.irNodesCompiled).c_str(), pctFor95,
                    formatCount(uint64_t(perM)).c_str());
    }
    printRule(74);
    return session.finish();
}
