/**
 * @file
 * Table IV — microarchitectural behaviour by phase: mean and standard
 * deviation of IPC, branches per instruction, and branch miss rate for
 * each framework phase, across the PyPy-suite workloads.
 *
 * Shape to reproduce: the JIT phase has the highest mean IPC and lowest
 * branch miss rate (with the largest IPC variance); the blackhole
 * interpreter has the worst IPC; GC predicts relatively well.
 */

#include "bench_common.h"
#include "xlayer/phase.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("table4", argc, argv);
    std::array<RunningStat, xlayer::kNumPhases> ipc, brPerInst, missRate;

    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunResult r =
            session.run(baseOptions(name, driver::VmKind::PyPyJit));
        // Like the paper, fold AOT calls from JIT code into the JIT
        // phase for this table.
        r.phaseCounters[uint32_t(xlayer::Phase::Jit)].accumulate(
            r.phaseCounters[uint32_t(xlayer::Phase::JitCall)]);
        r.phaseCounters[uint32_t(xlayer::Phase::JitCall)] =
            sim::PerfCounters();
        for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
            const sim::PerfCounters &c = r.phaseCounters[p];
            // Skip phases with too little data to be meaningful.
            if (c.instructions < 5000)
                continue;
            ipc[p].add(c.ipc());
            brPerInst[p].add(c.branchRate());
            missRate[p].add(c.branchMissRate());
        }
    }

    std::printf("Table IV: microarchitectural behaviour by phase "
                "(mean +/- stddev across PyPy-suite workloads)\n");
    std::printf("%-12s %14s %20s %18s\n", "Phase", "IPC",
                "branches/inst", "branch miss rate");
    printRule(70);
    const xlayer::Phase order[] = {
        xlayer::Phase::Interpreter, xlayer::Phase::Tracing,
        xlayer::Phase::Jit, xlayer::Phase::Gc,
        xlayer::Phase::Blackhole};
    for (xlayer::Phase p : order) {
        uint32_t i = uint32_t(p);
        if (ipc[i].count() == 0)
            continue;
        std::printf("%-12s %6.2f +/- %.2f    %6.3f +/- %.3f   "
                    "%6.3f +/- %.3f\n",
                    xlayer::phaseName(p), ipc[i].mean(), ipc[i].stddev(),
                    brPerInst[i].mean(), brPerInst[i].stddev(),
                    missRate[i].mean(), missRate[i].stddev());
    }
    printRule(70);
    return session.finish();
}
