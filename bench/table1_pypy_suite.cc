/**
 * @file
 * Table I — PyPy Benchmark Suite performance.
 *
 * For each workload: time, IPC, and branch MPKI on the CPython-analog
 * interpreter, the RPython-translated interpreter without the JIT, and
 * the full meta-tracing JIT; speedups relative to the CPython analog.
 * The paper's shape to reproduce: the CPython analog beats the
 * JIT-less translated interpreter (~2x), the JIT wins by a widely
 * varying factor, and JIT code has lower MPKI.
 */

#include "bench_common.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("table1", argc, argv);
    std::printf("Table I: PyPy Benchmark Suite Performance (simulated; "
                "time = cycles @ 3GHz)\n");
    std::printf("%-20s | %9s %5s %5s | %9s %6s %5s %5s | %9s %6s %5s "
                "%5s\n",
                "Benchmark", "CPy* t(s)", "IPC", "MPKI", "noJIT t(s)",
                "vC", "IPC", "MPKI", "JIT t(s)", "vC", "IPC", "MPKI");
    printRule(118);

    struct Row
    {
        std::string name;
        double speedup;
        std::string text;
    };
    std::vector<Row> rows;
    std::vector<double> speedups;

    const std::vector<std::string> names =
        selectWorkloads(tableOneWorkloads(), argc, argv);
    std::vector<driver::RunOptions> runs;
    for (const std::string &name : names) {
        runs.push_back(baseOptions(name, driver::VmKind::CPythonLike));
        runs.push_back(baseOptions(name, driver::VmKind::PyPyNoJit));
        runs.push_back(baseOptions(name, driver::VmKind::PyPyJit));
    }
    std::vector<driver::RunResult> res = session.sweep(runs);

    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const driver::RunResult &cpy = res[3 * i];
        const driver::RunResult &nojit = res[3 * i + 1];
        const driver::RunResult &jit = res[3 * i + 2];

        if (cpy.output != jit.output || cpy.output != nojit.output) {
            std::printf("%-20s | OUTPUT MISMATCH\n", name.c_str());
            continue;
        }

        double vNo = cpy.seconds > 0 ? nojit.seconds / cpy.seconds : 0;
        double vJit = jit.seconds > 0 ? cpy.seconds / jit.seconds : 0;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%-20s | %9.5f %5.2f %5.2f | %9.5f %5.2fx %5.2f "
                      "%5.2f | %9.5f %5.1fx %5.2f %5.2f",
                      name.c_str(), cpy.seconds, cpy.ipc, cpy.branchMpki,
                      nojit.seconds, vNo, nojit.ipc, nojit.branchMpki,
                      jit.seconds, vJit, jit.ipc, jit.branchMpki);
        rows.push_back({name, vJit, buf});
        speedups.push_back(vJit > 0 ? vJit : 1.0);
    }

    // The paper orders rows by JIT speedup over CPython.
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.speedup > b.speedup;
              });
    for (const Row &r : rows)
        std::printf("%s\n", r.text.c_str());
    printRule(118);
    std::printf("geomean JIT speedup over CPython*: %.2fx\n",
                geomean(speedups));
    std::printf("(vC columns: noJIT shows slowdown factor vs CPython*, "
                "JIT shows speedup)\n");
    return session.finish();
}
