/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Each bench binary regenerates one table or figure of the paper from
 * the simulated stack. "Time (s)" is simulated cycles at 3 GHz; we
 * reproduce shapes (orderings, dominant phases, crossovers), not the
 * paper's absolute hardware numbers.
 */

#ifndef XLVM_BENCH_COMMON_H
#define XLVM_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "driver/parallel.h"
#include "rt/faults.h"
#include "driver/runner.h"
#include "report/metrics.h"
#include "report/profile_export.h"
#include "report/trace_export.h"
#include "xlayer/sampler.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace bench {

/**
 * One bench binary's run context: executes sweeps through the
 * thread-pool harness (honoring --jobs/-j and XLVM_JOBS) and records
 * every run into a report::MetricsRegistry so "--report json[:path]" /
 * "--report csv[:path]" can emit a machine-readable report alongside —
 * never instead of — the human-readable table on stdout.
 *
 * Job counts and report destinations go to stderr so stdout stays
 * byte-identical to a sequential run; simulated counters are
 * deterministic regardless of job count, so both the printed table and
 * the exported report never vary with parallelism.
 *
 * Event tracing: a repeatable "--trace[:path]" (or --trace=path) flag —
 * or the XLVM_TRACE environment variable (XLVM_TRACE=1 for the default
 * path, XLVM_TRACE=path otherwise; flags win) — streams every recorded
 * run's cross-layer events into one combined Chrome trace-event JSON
 * file (one process per run; open in ui.perfetto.dev, inspect with
 * tools/xlvm-trace). "--trace-buffer-events N" sizes the per-run ring
 * buffer; when a run overflows it, the newest events survive, the
 * overwritten oldest ones are counted, and a one-line warning is
 * printed at exit. "--trace-tags name,name,..." opts additional event
 * tags into the recording mask on top of the default set (names as
 * printed by xlvm-trace, e.g. memo_hit, dispatch; "all" enables every
 * tag) — the high-frequency firehoses are off by default because they
 * flush the ring within milliseconds.
 *
 * Tier policy: "--tier-mode off|tier1|tier2|multi" (or the
 * XLVM_TIER_MODE environment variable; flags win) selects the JIT
 * compilation-tier policy for every run of the sweep. The flag is
 * applied to RunOptions — not just the VM config — so the exported
 * report's config section records the mode that actually ran.
 *
 * Sampling profiler: a repeatable "--profile[:path]" (or --profile=path)
 * flag — or XLVM_PROFILE (1 for the default path, a path otherwise;
 * flags win) — arms the deterministic cycle sampler for every run and
 * writes one combined profile JSON (inspect with tools/xlvm-prof, or
 * `xlvm-prof folded` for flamegraph.pl/speedscope input).
 * "--profile-interval N" sets the sampling period in modeled cycles.
 * Sampling never moves a modeled counter, so the stdout table and the
 * --report export are byte-identical with profiling on or off.
 *
 * Fault injection / containment: "--inject site[:nth],..." (or the
 * XLVM_INJECT environment variable, applied by the runner; flags win)
 * arms the deterministic fault engine for every run — a malformed spec
 * is a hard error at startup. "--storm-threshold N",
 * "--blacklist-cooldown N", "--compile-budget N" and "--max-traces N"
 * tune the deopt-storm blacklist, the per-trace compile budget and the
 * trace-cache capacity (0 = unlimited for the latter two).
 */
class Session
{
  public:
    Session(const char *report_name, int argc, char **argv)
        : registry(report_name), jobs_(driver::jobsFromArgs(argc, argv))
    {
        std::string err;
        if (!report::targetsFromArgs(argc, argv, report_name, &targets_,
                                     &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            std::exit(2);
        }
        parseTraceArgs(report_name, argc, argv);
    }

    /** Run a sweep through the harness; results keep the runs' order. */
    std::vector<driver::RunResult>
    sweep(const std::vector<driver::RunOptions> &runs)
    {
        std::fprintf(stderr, "[%u job%s]\n", jobs_,
                     jobs_ == 1 ? "" : "s");
        std::vector<driver::RunOptions> traced = runs;
        for (driver::RunOptions &o : traced) {
            o.simMemo = simMemo_;
            o.simSuperblock = simSuperblock_;
            o.tierMode = tierMode_;
            applyRobustness(o);
            if (profiling())
                o.profileIntervalCycles = profileInterval_;
        }
        if (tracing()) {
            for (driver::RunOptions &o : traced) {
                o.traceBufferEvents = traceBufferEvents_;
                o.traceTagMask = traceTagMask_;
                o.traceRunId = uint32_t(traceBuilder_.runCount() +
                                        (&o - traced.data()));
            }
        }
        std::vector<driver::RunResult> res =
            driver::runWorkloadsParallel(traced, jobs_);
        for (size_t i = 0; i < traced.size(); ++i) {
            registry.addRun(traced[i], res[i]);
            if (tracing()) {
                report::Json prov = report::runProvenance(traced[i]);
                traceBuilder_.addRun(traced[i].workload,
                                     driver::vmKindName(traced[i].vm),
                                     res[i].trace, &prov);
            }
            if (profiling())
                profileBuilder_.addRun(traced[i], res[i]);
        }
        return res;
    }

    /** Run one configuration inline (Racket-family kinds dispatch). */
    driver::RunResult
    run(const driver::RunOptions &opts)
    {
        driver::RunOptions o = opts;
        o.simMemo = simMemo_;
        o.simSuperblock = simSuperblock_;
        o.tierMode = tierMode_;
        applyRobustness(o);
        if (profiling())
            o.profileIntervalCycles = profileInterval_;
        if (tracing()) {
            o.traceBufferEvents = traceBufferEvents_;
            o.traceTagMask = traceTagMask_;
            o.traceRunId = uint32_t(traceBuilder_.runCount());
        }
        driver::RunResult r =
            (o.vm == driver::VmKind::RacketLike ||
             o.vm == driver::VmKind::PycketJit)
                ? driver::runRktWorkload(o)
                : driver::runWorkload(o);
        registry.addRun(o, r);
        if (tracing()) {
            report::Json prov = report::runProvenance(o);
            traceBuilder_.addRun(o.workload, driver::vmKindName(o.vm),
                                 r.trace, &prov);
        }
        if (profiling())
            profileBuilder_.addRun(o, r);
        return r;
    }

    bool tracing() const { return !tracePaths_.empty(); }

    bool profiling() const { return !profilePaths_.empty(); }

    /** Emit every --report and --trace target; returns the exit code. */
    int
    finish() const
    {
        std::string err;
        if (!registry.writeAll(targets_, &err)) {
            std::fprintf(stderr, "report: %s\n", err.c_str());
            return 1;
        }
        for (const report::ReportTarget &t : targets_) {
            if (t.path != "-")
                std::fprintf(stderr, "[report: %s]\n", t.path.c_str());
        }
        if (tracing()) {
            report::Json doc = traceBuilder_.toJson();
            for (const std::string &path : tracePaths_) {
                if (!report::writeChromeTrace(doc, path, &err)) {
                    std::fprintf(stderr, "trace: %s\n", err.c_str());
                    return 1;
                }
                if (path != "-")
                    std::fprintf(stderr, "[trace: %s]\n", path.c_str());
            }
            if (traceBuilder_.droppedEvents() > 0) {
                std::fprintf(stderr,
                             "xlvm: trace: %llu events dropped (ring "
                             "wrapped; oldest overwritten) — raise "
                             "--trace-buffer-events\n",
                             (unsigned long long)
                                 traceBuilder_.droppedEvents());
            }
        }
        if (profiling()) {
            for (const std::string &path : profilePaths_) {
                if (!profileBuilder_.write(path, &err)) {
                    std::fprintf(stderr, "profile: %s\n", err.c_str());
                    return 1;
                }
                if (path != "-")
                    std::fprintf(stderr, "[profile: %s]\n", path.c_str());
            }
        }
        return 0;
    }

    report::MetricsRegistry registry;

  private:
    void
    parseTraceArgs(const char *report_name, int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (std::strcmp(a, "--trace") == 0) {
                tracePaths_.push_back("");
            } else if (std::strncmp(a, "--trace:", 8) == 0) {
                tracePaths_.push_back(a + 8);
            } else if (std::strncmp(a, "--trace=", 8) == 0) {
                tracePaths_.push_back(a + 8);
            } else if (std::strcmp(a, "--trace-buffer-events") == 0 &&
                       i + 1 < argc) {
                traceBufferEvents_ = std::strtoull(argv[++i], nullptr, 10);
            } else if (std::strncmp(a, "--trace-buffer-events=", 22) ==
                       0) {
                traceBufferEvents_ = std::strtoull(a + 22, nullptr, 10);
            } else if (std::strcmp(a, "--trace-tags") == 0 &&
                       i + 1 < argc) {
                addTraceTags(argv[++i]);
            } else if (std::strncmp(a, "--trace-tags=", 13) == 0) {
                addTraceTags(a + 13);
            } else if (std::strcmp(a, "--sim-memo") == 0) {
                simMemo_ = true;
            } else if (std::strcmp(a, "--no-sim-memo") == 0) {
                simMemo_ = false;
            } else if (std::strcmp(a, "--sim-superblock") == 0) {
                simSuperblock_ = true;
            } else if (std::strcmp(a, "--no-sim-superblock") == 0) {
                simSuperblock_ = false;
            } else if (std::strcmp(a, "--tier-mode") == 0 &&
                       i + 1 < argc) {
                setTierMode(argv[++i]);
            } else if (std::strncmp(a, "--tier-mode=", 12) == 0) {
                setTierMode(a + 12);
            } else if (std::strncmp(a, "--tier-mode:", 12) == 0) {
                setTierMode(a + 12);
            } else if (std::strcmp(a, "--profile") == 0) {
                profilePaths_.push_back("");
            } else if (std::strncmp(a, "--profile:", 10) == 0) {
                profilePaths_.push_back(a + 10);
            } else if (std::strncmp(a, "--profile=", 10) == 0) {
                profilePaths_.push_back(a + 10);
            } else if (std::strcmp(a, "--profile-interval") == 0 &&
                       i + 1 < argc) {
                profileInterval_ = std::strtoull(argv[++i], nullptr, 10);
            } else if (std::strncmp(a, "--profile-interval=", 19) == 0) {
                profileInterval_ = std::strtoull(a + 19, nullptr, 10);
            } else if (std::strcmp(a, "--inject") == 0 && i + 1 < argc) {
                setInject(argv[++i]);
            } else if (std::strncmp(a, "--inject=", 9) == 0) {
                setInject(a + 9);
            } else if (std::strcmp(a, "--storm-threshold") == 0 &&
                       i + 1 < argc) {
                stormThreshold_ = uint32_t(std::strtoul(argv[++i],
                                                        nullptr, 10));
            } else if (std::strncmp(a, "--storm-threshold=", 18) == 0) {
                stormThreshold_ = uint32_t(std::strtoul(a + 18, nullptr,
                                                        10));
            } else if (std::strcmp(a, "--blacklist-cooldown") == 0 &&
                       i + 1 < argc) {
                blacklistCooldown_ = uint32_t(std::strtoul(argv[++i],
                                                           nullptr, 10));
            } else if (std::strncmp(a, "--blacklist-cooldown=", 21) ==
                       0) {
                blacklistCooldown_ = uint32_t(std::strtoul(a + 21,
                                                           nullptr, 10));
            } else if (std::strcmp(a, "--compile-budget") == 0 &&
                       i + 1 < argc) {
                compileBudgetOps_ = uint32_t(std::strtoul(argv[++i],
                                                          nullptr, 10));
            } else if (std::strncmp(a, "--compile-budget=", 17) == 0) {
                compileBudgetOps_ = uint32_t(std::strtoul(a + 17, nullptr,
                                                          10));
            } else if (std::strcmp(a, "--max-traces") == 0 &&
                       i + 1 < argc) {
                maxTraces_ = uint32_t(std::strtoul(argv[++i], nullptr,
                                                   10));
            } else if (std::strncmp(a, "--max-traces=", 13) == 0) {
                maxTraces_ = uint32_t(std::strtoul(a + 13, nullptr, 10));
            }
        }
        if (!tierModeSet_) {
            const char *env = std::getenv("XLVM_TIER_MODE");
            if (env && *env)
                setTierMode(env);
        }
        if (tracePaths_.empty()) {
            const char *env = std::getenv("XLVM_TRACE");
            if (env && *env && std::strcmp(env, "0") != 0) {
                tracePaths_.push_back(std::strcmp(env, "1") == 0 ? ""
                                                                 : env);
            }
        }
        if (profilePaths_.empty()) {
            const char *env = std::getenv("XLVM_PROFILE");
            if (env && *env && std::strcmp(env, "0") != 0) {
                profilePaths_.push_back(std::strcmp(env, "1") == 0 ? ""
                                                                   : env);
            }
        }
        if (traceBufferEvents_ == 0)
            traceBufferEvents_ = kDefaultTraceBufferEvents;
        if (profileInterval_ == 0)
            profileInterval_ = xlayer::kDefaultSampleIntervalCycles;
        for (std::string &p : tracePaths_) {
            if (p.empty())
                p = std::string(report_name) + "-trace.json";
        }
        for (std::string &p : profilePaths_) {
            if (p.empty())
                p = std::string(report_name) + "-profile.json";
        }
        // Document-level provenance header for the Chrome-trace export;
        // per-run config rides along with each otherData.runs entry.
        report::Json prov = report::Json::object();
        prov.set("report", report::Json(report_name));
        prov.set("schema_version",
                 report::Json(report::MetricsRegistry::kSchemaVersion));
        prov.set("tier_mode",
                 report::Json(vm::tierModeName(tierMode_)));
        prov.set("sampler_interval_cycles",
                 report::Json(profiling() ? profileInterval_
                                          : uint64_t(0)));
        traceBuilder_.setProvenance(std::move(prov));
    }

    /** Copy the fault-containment knobs into one run's options. The
     *  XLVM_INJECT env hatch is resolved by the runner so per-run specs
     *  stay overridable from a sweep script. */
    void
    applyRobustness(driver::RunOptions &o) const
    {
        if (!inject_.empty())
            o.inject = inject_;
        if (stormThreshold_ != kUnsetU32)
            o.stormThreshold = stormThreshold_;
        if (blacklistCooldown_ != kUnsetU32)
            o.blacklistCooldown = blacklistCooldown_;
        if (compileBudgetOps_ != kUnsetU32)
            o.compileBudgetOps = compileBudgetOps_;
        if (maxTraces_ != kUnsetU32)
            o.maxTraces = maxTraces_;
    }

    /** Validate an --inject spec up front; a malformed spec is a hard
     *  error (a silently ignored chaos trigger would make a CI sweep
     *  pass without testing anything). */
    void
    setInject(const char *spec)
    {
        rt::FaultEngine probe;
        std::string err;
        if (!probe.configure(spec, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            std::exit(2);
        }
        inject_ = spec;
    }

    /** Parse a tier-mode name; a typo is a hard error (a silently
     *  defaulted mode would gate the wrong golden set in CI). */
    void
    setTierMode(const char *name)
    {
        if (!vm::tierModeFromString(name, &tierMode_)) {
            std::fprintf(stderr,
                         "--tier-mode: unknown mode '%s' (want "
                         "off|tier1|tier2|multi)\n",
                         name);
            std::exit(2);
        }
        tierModeSet_ = true;
    }

    /** OR extra tags from a comma-separated name list into the
     *  recording mask ("all" enables everything). Unknown names warn
     *  and are ignored so a typo cannot silently record nothing. */
    void
    addTraceTags(const char *list)
    {
        std::string names(list);
        size_t pos = 0;
        while (pos <= names.size()) {
            size_t comma = names.find(',', pos);
            std::string name = names.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            if (name == "all") {
                traceTagMask_ = ~0u;
            } else if (!name.empty()) {
                int32_t tag = report::annotTagFromString(name);
                if (tag < 0) {
                    std::fprintf(stderr,
                                 "[--trace-tags: unknown tag '%s' "
                                 "ignored]\n",
                                 name.c_str());
                } else {
                    traceTagMask_ |= xlayer::traceTagBit(uint32_t(tag));
                }
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    static constexpr uint64_t kDefaultTraceBufferEvents = 1u << 20;

    std::vector<report::ReportTarget> targets_;
    unsigned jobs_;
    /** "--sim-memo"/"--no-sim-memo": sim-layer block memoization (a
     *  host-side accelerator; modeled counters are invariant, so CI
     *  runs the golden gate under both settings). */
    bool simMemo_ = true;
    /** "--sim-superblock"/"--no-sim-superblock": trace-level superblock
     *  replay on top of block memoization (same invariance contract;
     *  the golden gate also runs with it off). */
    bool simSuperblock_ = true;
    /** "--tier-mode"/XLVM_TIER_MODE: JIT compilation-tier policy. */
    vm::TierMode tierMode_ = vm::TierMode::Tier2;
    bool tierModeSet_ = false;
    std::vector<std::string> tracePaths_;
    uint64_t traceBufferEvents_ = kDefaultTraceBufferEvents;
    /** "--trace-tags": recording mask for the per-run event tracer. */
    uint32_t traceTagMask_ = xlayer::kDefaultTraceTagMask;
    report::ChromeTraceBuilder traceBuilder_;
    /** "--profile"/XLVM_PROFILE: sampling-profile destinations. */
    std::vector<std::string> profilePaths_;
    /** "--profile-interval": sampling period in modeled cycles. */
    uint64_t profileInterval_ = 0;
    report::ProfileBuilder profileBuilder_{"profile"};
    /** Sentinel: flag not given, keep the RunOptions default. */
    static constexpr uint32_t kUnsetU32 = ~0u;
    /** "--inject": fault-injection spec applied to every run. */
    std::string inject_;
    uint32_t stormThreshold_ = kUnsetU32;
    uint32_t blacklistCooldown_ = kUnsetU32;
    uint32_t compileBudgetOps_ = kUnsetU32;
    uint32_t maxTraces_ = kUnsetU32;
};

/**
 * Apply a "--workloads a,b,c" (or --workloads=a,b,c) filter to a bench
 * binary's default workload list, preserving the default order. Used by
 * CI smoke jobs to run a reduced set. Requested names that are not in
 * the default set are reported to stderr and ignored.
 */
inline std::vector<std::string>
selectWorkloads(std::vector<std::string> defaults, int argc, char **argv)
{
    std::string spec;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workloads") == 0 && i + 1 < argc)
            spec = argv[i + 1];
        else if (std::strncmp(argv[i], "--workloads=", 12) == 0)
            spec = argv[i] + 12;
    }
    if (spec.empty())
        return defaults;

    std::vector<std::string> wanted;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > start)
            wanted.push_back(spec.substr(start, comma - start));
        start = comma + 1;
    }

    std::vector<std::string> out;
    for (const std::string &name : defaults) {
        if (std::find(wanted.begin(), wanted.end(), name) != wanted.end())
            out.push_back(name);
    }
    for (const std::string &name : wanted) {
        if (std::find(defaults.begin(), defaults.end(), name) ==
            defaults.end())
            std::fprintf(stderr, "[--workloads: '%s' not in this "
                                 "bench's set, ignored]\n",
                         name.c_str());
    }
    return out;
}

/** Membership helper for benches that iterate a suite directly. */
inline bool
contains(const std::vector<std::string> &names, const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Table I / figures workload subset (order follows the paper). */
inline std::vector<std::string>
tableOneWorkloads()
{
    return {"richards",      "crypto_pyaes",
            "chaos",         "telco",
            "spectral_norm", "django",
            "twisted_iteration", "spitfire_cstringio",
            "raytrace_simple", "hexiom2",
            "float",         "ai"};
}

/** The wider set used by Figures 2 and 5-9. */
inline std::vector<std::string>
figureWorkloads()
{
    std::vector<std::string> names;
    for (const workloads::Workload &w : workloads::pypySuite())
        names.push_back(w.name);
    return names;
}

inline driver::RunOptions
baseOptions(const std::string &workload, driver::VmKind vm)
{
    driver::RunOptions o;
    o.workload = workload;
    o.vm = vm;
    o.loopThreshold = 120;
    o.bridgeThreshold = 40;
    // Tier policy thresholds for --tier-mode tier1/multi sweeps: trace
    // earlier than the tier-2 threshold (cheap baseline compiles buy
    // early native execution), promote at moderate reuse.
    o.tier1Threshold = 30;
    o.tier2Threshold = 60;
    o.maxInstructions = 400u * 1000 * 1000;
    return o;
}

inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Render a unit-length horizontal bar for ASCII stacked charts. */
inline std::string
bar(double fraction, int width)
{
    int n = int(fraction * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(n, '#');
}

} // namespace bench
} // namespace xlvm

#endif // XLVM_BENCH_COMMON_H
