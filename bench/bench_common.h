/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Each bench binary regenerates one table or figure of the paper from
 * the simulated stack. "Time (s)" is simulated cycles at 3 GHz; we
 * reproduce shapes (orderings, dominant phases, crossovers), not the
 * paper's absolute hardware numbers.
 */

#ifndef XLVM_BENCH_COMMON_H
#define XLVM_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "driver/parallel.h"
#include "driver/runner.h"
#include "workloads/workloads.h"

namespace xlvm {
namespace bench {

/**
 * Run a sweep through the thread-pool harness, honoring --jobs/-j and
 * XLVM_JOBS. The job count goes to stderr so stdout stays byte-identical
 * to a sequential (--jobs 1) run; simulated counters are deterministic
 * regardless of job count, so the table/figure content never varies.
 */
inline std::vector<driver::RunResult>
runSweep(const std::vector<driver::RunOptions> &runs, int argc, char **argv)
{
    unsigned jobs = driver::jobsFromArgs(argc, argv);
    std::fprintf(stderr, "[%u job%s]\n", jobs, jobs == 1 ? "" : "s");
    return driver::runWorkloadsParallel(runs, jobs);
}

/** Table I / figures workload subset (order follows the paper). */
inline std::vector<std::string>
tableOneWorkloads()
{
    return {"richards",      "crypto_pyaes",
            "chaos",         "telco",
            "spectral_norm", "django",
            "twisted_iteration", "spitfire_cstringio",
            "raytrace_simple", "hexiom2",
            "float",         "ai"};
}

/** The wider set used by Figures 2 and 5-9. */
inline std::vector<std::string>
figureWorkloads()
{
    std::vector<std::string> names;
    for (const workloads::Workload &w : workloads::pypySuite())
        names.push_back(w.name);
    return names;
}

inline driver::RunOptions
baseOptions(const std::string &workload, driver::VmKind vm)
{
    driver::RunOptions o;
    o.workload = workload;
    o.vm = vm;
    o.loopThreshold = 120;
    o.bridgeThreshold = 40;
    o.maxInstructions = 400u * 1000 * 1000;
    return o;
}

inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Render a unit-length horizontal bar for ASCII stacked charts. */
inline std::string
bar(double fraction, int width)
{
    int n = int(fraction * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(n, '#');
}

} // namespace bench
} // namespace xlvm

#endif // XLVM_BENCH_COMMON_H
