/**
 * @file
 * Figure 7 — composition of meta-traces by IR category per benchmark
 * (dynamic execution weight of memop / guard / call / ctrl / int / new /
 * float / str / ptr nodes).
 *
 * Shape to reproduce: memory operations are the largest category
 * (~26%), then guards (~22%), call overheads (~18%); call-heavy entries
 * (pidigits, spitfire) skew to calls; richards skews to guards; even
 * float-heavy benchmarks have modest float-node shares.
 */

#include "bench_common.h"
#include "jit/ir.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig7", argc, argv);
    std::printf("Figure 7: IR category breakdown per benchmark "
                "(%% of dynamic IR executions, weighted by lowered "
                "instructions)\n");
    std::printf("%-20s %6s %6s %6s %6s %6s %6s %6s %6s %6s\n",
                "Benchmark", "memop", "guard", "call", "ctrl", "int",
                "new", "float", "str", "ptr");
    printRule(86);

    std::array<double, jit::kNumIrCategories> grand{};
    double grandTotal = 0;

    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunOptions o = baseOptions(name, driver::VmKind::PyPyJit);
        o.irAnnotations = true;
        driver::RunResult r = session.run(o);

        std::array<double, jit::kNumIrCategories> weight{};
        double total = 0;
        for (size_t i = 0; i < r.irNodeMeta.size(); ++i) {
            double w = double(r.irExecCounts[i]) *
                       jit::loweredInstCount(r.irNodeMeta[i].op);
            weight[uint32_t(jit::irCategory(r.irNodeMeta[i].op))] += w;
            total += w;
        }
        if (total <= 0) {
            std::printf("%-20s (no JIT execution)\n", name.c_str());
            continue;
        }
        auto pc = [&](jit::IrCategory c) {
            return 100.0 * weight[uint32_t(c)] / total;
        };
        std::printf("%-20s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
                    "%5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    name.c_str(), pc(jit::IrCategory::MemOp),
                    pc(jit::IrCategory::Guard),
                    pc(jit::IrCategory::CallOverhead),
                    pc(jit::IrCategory::Ctrl), pc(jit::IrCategory::Int),
                    pc(jit::IrCategory::New),
                    pc(jit::IrCategory::Float), pc(jit::IrCategory::Str),
                    pc(jit::IrCategory::Ptr));
        for (uint32_t c = 0; c < jit::kNumIrCategories; ++c)
            grand[c] += weight[c];
        grandTotal += total;
    }
    printRule(86);
    if (grandTotal > 0) {
        std::printf("%-20s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
                    "%5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    "ALL (weighted)",
                    100 * grand[uint32_t(jit::IrCategory::MemOp)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Guard)] /
                        grandTotal,
                    100 *
                        grand[uint32_t(jit::IrCategory::CallOverhead)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Ctrl)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Int)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::New)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Float)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Str)] /
                        grandTotal,
                    100 * grand[uint32_t(jit::IrCategory::Ptr)] /
                        grandTotal);
    }
    return session.finish();
}
