/**
 * @file
 * Figure 4 — phase breakdown of the two meta-tracing JIT VMs (PyPy* and
 * Pycket*) on the CLBG workloads.
 *
 * Shape to reproduce: both VMs show similar phase mixes per program —
 * GC-heavy binarytrees, JIT-heavy fasta/spectralnorm, JIT-call-heavy
 * pidigits.
 */

#include "bench_common.h"
#include "xlayer/phase.h"

using namespace xlvm;
using namespace xlvm::bench;

namespace {

void
row(const char *vm, const driver::RunResult &r)
{
    auto pct = [&](xlayer::Phase p) {
        return 100.0 * r.phaseShares[uint32_t(p)];
    };
    std::printf("  %-8s %6.1f%% %7.1f%% %5.1f%% %8.1f%% %5.1f%% "
                "%9.1f%%\n",
                vm, pct(xlayer::Phase::Interpreter),
                pct(xlayer::Phase::Tracing), pct(xlayer::Phase::Jit),
                pct(xlayer::Phase::JitCall), pct(xlayer::Phase::Gc),
                pct(xlayer::Phase::Blackhole));
}

} // namespace

int
main(int argc, char **argv)
{
    Session session("fig4", argc, argv);
    std::printf("Figure 4: phase breakdown for PyPy* and Pycket* on "
                "CLBG\n");
    std::printf("%-18s %7s %8s %6s %9s %6s %10s\n", "Benchmark",
                "interp", "tracing", "jit", "jit-call", "gc",
                "blackhole");
    printRule(78);
    std::vector<std::string> rktNames;
    for (const workloads::Workload &w : workloads::clbgSuite()) {
        if (!w.rktSource.empty())
            rktNames.push_back(w.name);
    }
    const std::vector<std::string> names =
        selectWorkloads(rktNames, argc, argv);
    for (const std::string &name : names) {
        std::printf("%s\n", name.c_str());
        driver::RunResult pypy =
            session.run(baseOptions(name, driver::VmKind::PyPyJit));
        row("PyPy*", pypy);
        driver::RunResult pycket =
            session.run(baseOptions(name, driver::VmKind::PycketJit));
        row("Pycket*", pycket);
    }
    printRule(78);
    return session.finish();
}
