/**
 * @file
 * Figure 8 — dynamic frequency histogram of IR node types across the
 * whole PyPy-suite.
 *
 * Shape to reproduce: getfield_gc and setfield_gc lead (>18% and >10%
 * in the paper); ~80% of node *types* each account for under 1% of
 * executions.
 */

#include <map>

#include "bench_common.h"
#include "jit/ir.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig8", argc, argv);
    std::map<jit::IrOp, uint64_t> freq;
    uint64_t total = 0;

    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunOptions o = baseOptions(name, driver::VmKind::PyPyJit);
        o.irAnnotations = true;
        driver::RunResult r = session.run(o);
        for (size_t i = 0; i < r.irNodeMeta.size(); ++i) {
            freq[r.irNodeMeta[i].op] += r.irExecCounts[i];
            total += r.irExecCounts[i];
        }
    }

    std::vector<std::pair<jit::IrOp, uint64_t>> sorted(freq.begin(),
                                                       freq.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    std::printf("Figure 8: dynamic IR node-type frequency histogram "
                "(all PyPy-suite workloads)\n");
    std::printf("%-22s %10s  %s\n", "IR node type", "share", "");
    printRule(70);
    int below1pct = 0;
    for (const auto &[op, count] : sorted) {
        double share = total ? double(count) / total : 0;
        if (share < 0.01)
            ++below1pct;
        std::printf("%-22s %9.2f%%  %s\n", jit::irOpName(op),
                    100.0 * share, bar(share, 40).c_str());
    }
    printRule(70);
    std::printf("%d of %zu node types are below 1%% of executions\n",
                below1pct, sorted.size());
    return session.finish();
}
