/**
 * @file
 * Robustness ablation — deopt-storm blacklisting on an adversarial
 * guard-churn workload (DESIGN.md §12). The stress workload compiles a
 * hot inner loop, then flips the guarded branch so every subsequent
 * trace entry fails its first guard with zero progress. Rows compare
 * containment off (every entry pays trace-entry + deopt overhead
 * forever) against the blacklist at a few threshold/cooldown settings,
 * reporting modeled cycles (normalized to containment off), total
 * deopts, and the blacklist/re-arm counts. The program output — and
 * thus every architectural counter of the workload itself — is
 * identical across rows; only the containment policy moves.
 */

#include "bench_common.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("robustness_storm", argc, argv);

    struct Variant
    {
        const char *label;
        uint32_t stormThreshold;
        uint32_t cooldown;
    };
    const Variant variants[] = {
        {"containment off", 0, 0},
        {"threshold 50", 50, 2000},
        {"threshold 200", 200, 2000},
        {"threshold 600 (default)", 600, 4000},
    };

    std::vector<driver::RunOptions> runs;
    for (const Variant &v : variants) {
        driver::RunOptions o =
            baseOptions("guard_churn", driver::VmKind::PyPyJit);
        o.stormThreshold = v.stormThreshold;
        o.blacklistCooldown = v.cooldown;
        runs.push_back(o);
    }
    std::vector<driver::RunResult> res = session.sweep(runs);

    std::printf("Deopt-storm containment on guard_churn (cycles "
                "normalized to containment off)\n");
    std::printf("%-24s %8s %10s %12s %8s\n", "Variant", "cycles",
                "deopts", "blacklisted", "rearmed");
    printRule(66);
    double base = res[0].cycles;
    for (size_t i = 0; i < std::size(variants); ++i) {
        const driver::RunResult &r = res[i];
        std::printf("%-24s %7.3fx %10llu %12llu %8llu\n",
                    variants[i].label,
                    base > 0 ? r.cycles / base : 0.0,
                    (unsigned long long)r.deopts,
                    (unsigned long long)r.tracesBlacklisted,
                    (unsigned long long)r.tracesRearmed);
    }
    printRule(66);
    return session.finish();
}
