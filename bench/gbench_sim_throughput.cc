/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * simulation substrate itself — core consumption rate, branch
 * prediction, dict probing, bignum arithmetic, and end-to-end VM
 * execution per modeled configuration. Useful for keeping the
 * regeneration benches fast as the stack evolves.
 */

#include <benchmark/benchmark.h>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "rt/rbigint.h"
#include "rt/rdict.h"
#include "sim/cache.h"
#include "sim/core.h"
#include "sim/emitter.h"

namespace {

using namespace xlvm;

void
BM_CoreConsume(benchmark::State &state)
{
    sim::Core core;
    uint64_t n = 0;
    for (auto _ : state) {
        sim::BlockEmitter e(core, 0x400000);
        e.alu(8);
        e.loadPtr(&core, 1);
        e.branch((n++ & 3) == 0);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10);
}
BENCHMARK(BM_CoreConsume);

void
BM_CacheAccess(benchmark::State &state)
{
    // range(0)==0: repeated hits to one line (MRU fast path);
    // range(0)==1: stride walk over 4x the cache capacity (miss-heavy).
    sim::CacheParams cfg; // defaults: model L1
    sim::Cache cache(cfg);
    bool strided = state.range(0) != 0;
    uint64_t span = uint64_t(cfg.sizeBytes) * 4;
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        if (strided)
            addr = (addr + 64) % span;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

void
BM_DictLookup(benchmark::State &state)
{
    struct Traits
    {
        static bool equal(int a, int b) { return a == b; }
    };
    rt::ROrderedDict<int, int, Traits> d;
    for (int i = 0; i < 1024; ++i)
        d.set(i, uint64_t(i) * 0x9e3779b97f4a7c15ull, i);
    int k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            d.get(k & 1023, uint64_t(k & 1023) * 0x9e3779b97f4a7c15ull));
        ++k;
    }
}
BENCHMARK(BM_DictLookup);

void
BM_BigIntMul(benchmark::State &state)
{
    rt::RBigInt a = rt::RBigInt::pow(rt::RBigInt::fromInt64(7),
                                     uint64_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(rt::RBigInt::mul(a, a));
}
BENCHMARK(BM_BigIntMul)->Arg(32)->Arg(256);

void
BM_VmEndToEnd(benchmark::State &state)
{
    driver::VmKind kinds[] = {driver::VmKind::CPythonLike,
                              driver::VmKind::PyPyNoJit,
                              driver::VmKind::PyPyJit};
    driver::VmKind vm = kinds[state.range(0)];
    for (auto _ : state) {
        driver::RunOptions o;
        o.workload = "crypto_pyaes";
        o.scale = 120;
        o.vm = vm;
        o.loopThreshold = 60;
        driver::RunResult r = driver::runWorkload(o);
        benchmark::DoNotOptimize(r.instructions);
    }
}
BENCHMARK(BM_VmEndToEnd)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_ParallelHarness(benchmark::State &state)
{
    // A small sweep (3 VMs x 2 workloads) through the thread-pool
    // harness at Arg(0) jobs; Arg(0)==1 is the sequential baseline the
    // wall-clock speedup is measured against.
    unsigned jobs = unsigned(state.range(0));
    std::vector<driver::RunOptions> runs;
    for (const char *w : {"crypto_pyaes", "chaos"}) {
        for (driver::VmKind vm : {driver::VmKind::CPythonLike,
                                  driver::VmKind::PyPyNoJit,
                                  driver::VmKind::PyPyJit}) {
            driver::RunOptions o;
            o.workload = w;
            o.scale = 120;
            o.vm = vm;
            o.loopThreshold = 60;
            runs.push_back(o);
        }
    }
    for (auto _ : state) {
        std::vector<driver::RunResult> res =
            driver::runWorkloadsParallel(runs, jobs);
        benchmark::DoNotOptimize(res[0].instructions);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(runs.size()));
}
BENCHMARK(BM_ParallelHarness)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
