/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * simulation substrate itself — core consumption rate, branch
 * prediction, dict probing, bignum arithmetic, and end-to-end VM
 * execution per modeled configuration. Useful for keeping the
 * regeneration benches fast as the stack evolves.
 */

#include <benchmark/benchmark.h>

#include "driver/runner.h"
#include "rt/rbigint.h"
#include "rt/rdict.h"
#include "sim/core.h"
#include "sim/emitter.h"

namespace {

using namespace xlvm;

void
BM_CoreConsume(benchmark::State &state)
{
    sim::Core core;
    uint64_t n = 0;
    for (auto _ : state) {
        sim::BlockEmitter e(core, 0x400000);
        e.alu(8);
        e.loadPtr(&core, 1);
        e.branch((n++ & 3) == 0);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10);
}
BENCHMARK(BM_CoreConsume);

void
BM_DictLookup(benchmark::State &state)
{
    struct Traits
    {
        static bool equal(int a, int b) { return a == b; }
    };
    rt::ROrderedDict<int, int, Traits> d;
    for (int i = 0; i < 1024; ++i)
        d.set(i, uint64_t(i) * 0x9e3779b97f4a7c15ull, i);
    int k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            d.get(k & 1023, uint64_t(k & 1023) * 0x9e3779b97f4a7c15ull));
        ++k;
    }
}
BENCHMARK(BM_DictLookup);

void
BM_BigIntMul(benchmark::State &state)
{
    rt::RBigInt a = rt::RBigInt::pow(rt::RBigInt::fromInt64(7),
                                     uint64_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(rt::RBigInt::mul(a, a));
}
BENCHMARK(BM_BigIntMul)->Arg(32)->Arg(256);

void
BM_VmEndToEnd(benchmark::State &state)
{
    driver::VmKind kinds[] = {driver::VmKind::CPythonLike,
                              driver::VmKind::PyPyNoJit,
                              driver::VmKind::PyPyJit};
    driver::VmKind vm = kinds[state.range(0)];
    for (auto _ : state) {
        driver::RunOptions o;
        o.workload = "crypto_pyaes";
        o.scale = 120;
        o.vm = vm;
        o.loopThreshold = 60;
        driver::RunResult r = driver::runWorkload(o);
        benchmark::DoNotOptimize(r.instructions);
    }
}
BENCHMARK(BM_VmEndToEnd)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
