/**
 * @file
 * Host-side microbenchmarks (google-benchmark): throughput of the
 * simulation substrate itself — core consumption rate, branch
 * prediction, dict probing, bignum arithmetic, and end-to-end VM
 * execution per modeled configuration. Useful for keeping the
 * regeneration benches fast as the stack evolves.
 */

#include <benchmark/benchmark.h>

#include "driver/parallel.h"
#include "driver/runner.h"
#include "rt/rbigint.h"
#include "rt/rdict.h"
#include "sim/block_memo.h"
#include "sim/cache.h"
#include "sim/core.h"
#include "sim/emitter.h"

namespace {

using namespace xlvm;

void
BM_CoreConsume(benchmark::State &state)
{
    sim::Core core;
    uint64_t n = 0;
    for (auto _ : state) {
        sim::BlockEmitter e(core, 0x400000);
        e.alu(8);
        e.loadPtr(&core, 1);
        e.branch((n++ & 3) == 0);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 10);
}
BENCHMARK(BM_CoreConsume);

/**
 * The block-memoization consume path (sim/block_memo.h), measured at the
 * core level: one fixed hot block — the shape of a lowered counting-loop
 * body (a straight ALU run, a load, a taken back-edge branch) — emitted
 * repeatedly inside a memo session with a boundary per iteration, exactly
 * as the trace executor brackets it. Arg(0)==1 memoizes (after the
 * predictor history saturates, every iteration replays the recorded
 * delta); Arg(0)==0 is the stepping baseline on the identical stream.
 * The ratio of the two is the sim-path speedup the memo layer provides.
 */
void
BM_CoreConsumeMemoBlock(benchmark::State &state)
{
    sim::CoreParams p;
    p.simMemo = state.range(0) != 0;
    const int groups = int(state.range(1));
    // Loads access the dcache live at replay (exactness), so they bound
    // the replay speedup; the load-free shape shows the ceiling.
    const bool withLoad = state.range(2) != 0;
    sim::Core core(p);
    core.memoSessionBegin(16);
    for (auto _ : state) {
        sim::BlockEmitter e(core, 0x400000);
        for (int g = 0; g < groups; ++g) {
            e.alu(8);
            if (withLoad)
                e.loadPtr(&core, 1);
            e.branch(true);
        }
        core.memoBoundary();
    }
    core.memoSessionEnd();
    benchmark::DoNotOptimize(core.totalCyclesFp());
    state.SetItemsProcessed(int64_t(state.iterations()) * groups *
                            (withLoad ? 10 : 9));
    state.counters["memo_hit_rate"] =
        benchmark::Counter(core.memoStats().hitRate());
}
BENCHMARK(BM_CoreConsumeMemoBlock)
    ->Args({0, 1, 1})
    ->Args({1, 1, 1})
    ->Args({0, 8, 1})
    ->Args({1, 8, 1})
    ->Args({0, 32, 1})
    ->Args({1, 32, 1})
    ->Args({0, 32, 0})
    ->Args({1, 32, 0});

void
BM_CacheAccess(benchmark::State &state)
{
    // range(0)==0: repeated hits to one line (MRU fast path);
    // range(0)==1: stride walk over 4x the cache capacity (miss-heavy).
    sim::CacheParams cfg; // defaults: model L1
    sim::Cache cache(cfg);
    bool strided = state.range(0) != 0;
    uint64_t span = uint64_t(cfg.sizeBytes) * 4;
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        if (strided)
            addr = (addr + 64) % span;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

void
BM_DictLookup(benchmark::State &state)
{
    struct Traits
    {
        static bool equal(int a, int b) { return a == b; }
    };
    rt::ROrderedDict<int, int, Traits> d;
    for (int i = 0; i < 1024; ++i)
        d.set(i, uint64_t(i) * 0x9e3779b97f4a7c15ull, i);
    int k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            d.get(k & 1023, uint64_t(k & 1023) * 0x9e3779b97f4a7c15ull));
        ++k;
    }
}
BENCHMARK(BM_DictLookup);

void
BM_BigIntMul(benchmark::State &state)
{
    rt::RBigInt a = rt::RBigInt::pow(rt::RBigInt::fromInt64(7),
                                     uint64_t(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(rt::RBigInt::mul(a, a));
}
BENCHMARK(BM_BigIntMul)->Arg(32)->Arg(256);

void
BM_VmEndToEnd(benchmark::State &state)
{
    driver::VmKind kinds[] = {driver::VmKind::CPythonLike,
                              driver::VmKind::PyPyNoJit,
                              driver::VmKind::PyPyJit};
    driver::VmKind vm = kinds[state.range(0)];
    for (auto _ : state) {
        driver::RunOptions o;
        o.workload = "crypto_pyaes";
        o.scale = 120;
        o.vm = vm;
        o.loopThreshold = 60;
        driver::RunResult r = driver::runWorkload(o);
        benchmark::DoNotOptimize(r.instructions);
    }
}
BENCHMARK(BM_VmEndToEnd)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_ParallelHarness(benchmark::State &state)
{
    // A small sweep (3 VMs x 2 workloads) through the thread-pool
    // harness at Arg(0) jobs; Arg(0)==1 is the sequential baseline the
    // wall-clock speedup is measured against.
    unsigned jobs = unsigned(state.range(0));
    std::vector<driver::RunOptions> runs;
    for (const char *w : {"crypto_pyaes", "chaos"}) {
        for (driver::VmKind vm : {driver::VmKind::CPythonLike,
                                  driver::VmKind::PyPyNoJit,
                                  driver::VmKind::PyPyJit}) {
            driver::RunOptions o;
            o.workload = w;
            o.scale = 120;
            o.vm = vm;
            o.loopThreshold = 60;
            runs.push_back(o);
        }
    }
    for (auto _ : state) {
        std::vector<driver::RunResult> res =
            driver::runWorkloadsParallel(runs, jobs);
        benchmark::DoNotOptimize(res[0].instructions);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(runs.size()));
}
BENCHMARK(BM_ParallelHarness)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
