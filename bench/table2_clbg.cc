/**
 * @file
 * Table II — CLBG benchmark performance across language implementations:
 * the CPython analog, PyPy (meta-tracing JIT), the Racket-like custom
 * method-JIT VM, Pycket (MiniRkt on the meta-tracing framework), and
 * native C++.
 *
 * Shape to reproduce: PyPy beats CPython broadly; Pycket lands within
 * ~0.3x-2x of the Racket-like VM; everything trails native C++.
 */

#include "bench_common.h"
#include "native/clbg_native.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("table2", argc, argv);
    std::printf("Table II: CLBG performance (simulated seconds; '-' = "
                "no implementation)\n");
    std::printf("%-16s %10s %10s %7s %10s %10s %7s %10s\n", "Benchmark",
                "CPython*", "PyPy*", "vC", "Racket*", "Pycket*", "vR",
                "C++*");
    printRule(92);

    // Each workload contributes 2 runs, plus 2 more (Racket*/Pycket*)
    // when a MiniRkt translation exists; `first[i]` is workload i's
    // offset into the flat run list.
    std::vector<std::string> clbgNames;
    for (const workloads::Workload &w : workloads::clbgSuite())
        clbgNames.push_back(w.name);
    const std::vector<std::string> names =
        selectWorkloads(clbgNames, argc, argv);

    std::vector<driver::RunOptions> runs;
    std::vector<size_t> first;
    for (const workloads::Workload &w : workloads::clbgSuite()) {
        if (!contains(names, w.name))
            continue;
        first.push_back(runs.size());
        runs.push_back(baseOptions(w.name, driver::VmKind::CPythonLike));
        runs.push_back(baseOptions(w.name, driver::VmKind::PyPyJit));
        if (!w.rktSource.empty()) {
            runs.push_back(baseOptions(w.name, driver::VmKind::RacketLike));
            runs.push_back(baseOptions(w.name, driver::VmKind::PycketJit));
        }
    }
    std::vector<driver::RunResult> res = session.sweep(runs);

    size_t wi = 0;
    for (const workloads::Workload &w : workloads::clbgSuite()) {
        if (!contains(names, w.name))
            continue;
        size_t base = first[wi++];
        const driver::RunResult &cpy = res[base];
        const driver::RunResult &pypy = res[base + 1];
        bool outputsAgree = cpy.output == pypy.output;

        std::string racketCol = "-", pycketCol = "-", vrCol = "-";
        if (!w.rktSource.empty()) {
            const driver::RunResult &racket = res[base + 2];
            const driver::RunResult &pycket = res[base + 3];
            racketCol = formatFixed(racket.seconds, 5);
            pycketCol = formatFixed(pycket.seconds, 5);
            if (pycket.seconds > 0) {
                vrCol = formatFixed(racket.seconds / pycket.seconds, 2) +
                        "x";
            }
        }
        std::string nativeCol = "-";
        double nativeSecs = native::runNative(w.name);
        if (nativeSecs >= 0)
            nativeCol = formatFixed(nativeSecs, 5);

        double vc = pypy.seconds > 0 ? cpy.seconds / pypy.seconds : 0;
        std::printf("%-16s %10.5f %10.5f %6.2fx %10s %10s %7s %10s%s\n",
                    w.name.c_str(), cpy.seconds, pypy.seconds, vc,
                    racketCol.c_str(), pycketCol.c_str(), vrCol.c_str(),
                    nativeCol.c_str(),
                    outputsAgree ? "" : "  [MISMATCH]");
    }
    printRule(92);
    std::printf("vC = PyPy* speedup over CPython*; vR = Pycket* speedup "
                "over Racket*.\n");
    return session.finish();
}
