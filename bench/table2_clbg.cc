/**
 * @file
 * Table II — CLBG benchmark performance across language implementations:
 * the CPython analog, PyPy (meta-tracing JIT), the Racket-like custom
 * method-JIT VM, Pycket (MiniRkt on the meta-tracing framework), and
 * native C++.
 *
 * Shape to reproduce: PyPy beats CPython broadly; Pycket lands within
 * ~0.3x-2x of the Racket-like VM; everything trails native C++.
 */

#include "bench_common.h"
#include "native/clbg_native.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main()
{
    std::printf("Table II: CLBG performance (simulated seconds; '-' = "
                "no implementation)\n");
    std::printf("%-16s %10s %10s %7s %10s %10s %7s %10s\n", "Benchmark",
                "CPython*", "PyPy*", "vC", "Racket*", "Pycket*", "vR",
                "C++*");
    printRule(92);

    for (const workloads::Workload &w : workloads::clbgSuite()) {
        driver::RunResult cpy = driver::runWorkload(
            baseOptions(w.name, driver::VmKind::CPythonLike));
        driver::RunResult pypy = driver::runWorkload(
            baseOptions(w.name, driver::VmKind::PyPyJit));
        bool outputsAgree = cpy.output == pypy.output;

        std::string racketCol = "-", pycketCol = "-", vrCol = "-";
        if (!w.rktSource.empty()) {
            driver::RunResult racket = driver::runRktWorkload(
                baseOptions(w.name, driver::VmKind::RacketLike));
            driver::RunResult pycket = driver::runRktWorkload(
                baseOptions(w.name, driver::VmKind::PycketJit));
            racketCol = formatFixed(racket.seconds, 5);
            pycketCol = formatFixed(pycket.seconds, 5);
            if (pycket.seconds > 0) {
                vrCol = formatFixed(racket.seconds / pycket.seconds, 2) +
                        "x";
            }
        }
        std::string nativeCol = "-";
        double nativeSecs = native::runNative(w.name);
        if (nativeSecs >= 0)
            nativeCol = formatFixed(nativeSecs, 5);

        double vc = pypy.seconds > 0 ? cpy.seconds / pypy.seconds : 0;
        std::printf("%-16s %10.5f %10.5f %6.2fx %10s %10s %7s %10s%s\n",
                    w.name.c_str(), cpy.seconds, pypy.seconds, vc,
                    racketCol.c_str(), pycketCol.c_str(), vrCol.c_str(),
                    nativeCol.c_str(),
                    outputsAgree ? "" : "  [MISMATCH]");
    }
    printRule(92);
    std::printf("vC = PyPy* speedup over CPython*; vR = Pycket* speedup "
                "over Racket*.\n");
    return 0;
}
