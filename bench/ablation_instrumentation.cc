/**
 * @file
 * Ablation — instrumentation perturbation (Section III of the paper
 * notes the PyPy Log costs <10% and is disabled for timing runs; our
 * annotations are free by default).
 *
 * Re-runs workloads with annotations charged like real tagged nops
 * (occupying issue slots) to quantify how much a nop-based methodology
 * would perturb the numbers it collects.
 */

#include "bench_common.h"
#include "minipy/compiler.h"
#include "minipy/interp.h"
#include "vm/context.h"
#include "workloads/workloads.h"

using namespace xlvm;
using namespace xlvm::bench;

namespace {

double
cyclesWithAnnotCost(const std::string &name, uint32_t annot_cost_fp,
                    bool ir_annots)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    vm::VmConfig cfg;
    cfg.core.annotCostFp = annot_cost_fp;
    cfg.jit.loopThreshold = 120;
    cfg.jit.irNodeAnnotations = ir_annots;
    cfg.maxInstructions = 200u * 1000 * 1000;
    vm::VmContext ctx(cfg);
    auto prog = minipy::compileSource(workloads::instantiate(*w, 0),
                                      ctx.space);
    minipy::Interp interp(ctx, *prog);
    interp.run();
    return ctx.core.totalCycles();
}

} // namespace

int
main()
{
    std::printf("Instrumentation-perturbation ablation: cycles relative "
                "to free annotations\n");
    std::printf("%-18s %18s %24s\n", "Benchmark", "nop-cost annots",
                "+ per-IR-node annots");
    printRule(64);
    for (const char *name :
         {"richards", "crypto_pyaes", "django", "spectral_norm"}) {
        double free0 = cyclesWithAnnotCost(name, 0, false);
        double nops = cyclesWithAnnotCost(name, sim::kCycleFp / 4, false);
        double irn = cyclesWithAnnotCost(name, sim::kCycleFp / 4, true);
        std::printf("%-18s %17.2f%% %23.2f%%\n", name,
                    100.0 * (nops / free0 - 1.0),
                    100.0 * (irn / free0 - 1.0));
    }
    printRule(64);
    std::printf("(the paper reports <10%% overhead for the PyPy Log and "
                "disables it for timing runs)\n");
    return 0;
}
