/**
 * @file
 * Ablation — contribution of each optimizer stage (DESIGN.md design
 * decision 5): run representative workloads with escape analysis, heap
 * caching, guard elision, and constant folding individually disabled,
 * reporting the slowdown and GC pressure relative to the full optimizer.
 *
 * The virtualization row quantifies the paper's Section V-B observation
 * that escape analysis is why "garbage collection is used more heavily
 * before the JIT phase".
 */

#include "bench_common.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("ablation_optimizer", argc, argv);
    const char *names[] = {"chaos", "float", "crypto_pyaes",
                           "richards", "spectral_norm"};
    struct Variant
    {
        const char *label;
        void (*tweak)(driver::RunOptions &);
    };
    const Variant variants[] = {
        {"full optimizer", [](driver::RunOptions &) {}},
        {"no virtualize",
         [](driver::RunOptions &o) { o.optVirtualize = false; }},
        {"no heap cache",
         [](driver::RunOptions &o) { o.optHeapCache = false; }},
        {"no guard elision",
         [](driver::RunOptions &o) { o.optElideGuards = false; }},
        {"no const folding",
         [](driver::RunOptions &o) { o.optFoldConstants = false; }},
    };

    std::printf("Optimizer ablation (cycles normalized to the full "
                "optimizer; minor GCs in JIT runs)\n");
    std::printf("%-18s", "Variant");
    for (const char *n : names)
        std::printf(" %15s", n);
    std::printf("\n");
    printRule(18 + 16 * 5);

    constexpr size_t kCols = 5;
    std::vector<driver::RunOptions> runs;
    for (const Variant &v : variants) {
        for (const char *n : names) {
            driver::RunOptions o = baseOptions(n, driver::VmKind::PyPyJit);
            v.tweak(o);
            runs.push_back(o);
        }
    }
    std::vector<driver::RunResult> res = session.sweep(runs);

    // Row 0 ("full optimizer") is the normalization baseline.
    size_t vi = 0;
    for (const Variant &v : variants) {
        std::printf("%-18s", v.label);
        for (size_t i = 0; i < kCols; ++i) {
            const driver::RunResult &r = res[vi * kCols + i];
            double base = res[i].cycles;
            std::printf("   %5.2fx gc=%-4llu",
                        base > 0 ? r.cycles / base : 0.0,
                        (unsigned long long)r.gcMinor);
        }
        std::printf("\n");
        ++vi;
    }
    printRule(18 + 16 * 5);
    return session.finish();
}
