/**
 * @file
 * Figure 3 — phase diagrams over time for the best- and worst-speedup
 * benchmarks: for each instruction-count bin, the dominant phase and an
 * ASCII stacked view of the phase mix.
 *
 * Shape to reproduce: runs begin in interpreter/tracing/blackhole
 * bursts, then the JIT phase dominates; GC activity is heavier before
 * the JIT phase warms up (escape analysis removes allocations).
 */

#include "bench_common.h"
#include "xlayer/phase.h"

using namespace xlvm;
using namespace xlvm::bench;

namespace {

void
timelineFor(Session &session, const char *name)
{
    driver::RunOptions o = bench::baseOptions(name,
                                              driver::VmKind::PyPyJit);
    // ~40 bins across the run. The probe pass only sizes the bin, so
    // it is not recorded in the metrics report.
    driver::RunResult probe = driver::runWorkload(o);
    uint64_t bin = std::max<uint64_t>(probe.instructions / 40, 2000);
    o.timelineBin = bin;
    driver::RunResult r = session.run(o);

    std::printf("\n%s (bin = %s instructions)\n", name,
                formatCount(bin).c_str());
    std::printf("%12s  %-9s %s\n", "instr", "dominant",
                "interp/trace/jit/call/gc/bh  (20-char stacked bar)");
    const char phaseChar[] = {'i', 't', 'J', 'c', 'g', 'b', 'n'};
    for (const auto &tb : r.timeline) {
        double total = 0;
        for (double c : tb.cycles)
            total += c;
        if (total <= 0)
            continue;
        uint32_t dom = 0;
        std::string stacked;
        for (uint32_t p = 0; p < 6; ++p) {
            if (tb.cycles[p] > tb.cycles[dom])
                dom = p;
            int chars = int(20.0 * tb.cycles[p] / total + 0.5);
            stacked += std::string(chars, phaseChar[p]);
        }
        stacked.resize(20, ' ');
        std::printf("%12s  %-9s [%s]\n",
                    formatCount(tb.instrEnd).c_str(),
                    xlayer::phaseName(xlayer::Phase(dom)),
                    stacked.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Session session("fig3", argc, argv);
    std::printf("Figure 3: phase timeline for best- and worst-performing "
                "benchmarks\n");
    // Best and worst JIT speedups from Table I plus a GC-heavy case.
    const std::vector<std::string> names = selectWorkloads(
        {"spectral_norm", "django", "float"}, argc, argv);
    for (const std::string &name : names)
        timelineFor(session, name.c_str());
    return session.finish();
}
