/**
 * @file
 * Figure 9 — average machine instructions per IR node type.
 *
 * Static lowering lengths from the backend, presented in descending
 * order (the paper's shape: call_assembler > 30, other calls > 15, most
 * nodes 1-2 instructions), plus the dynamically-weighted mean per
 * category from the suite runs.
 */

#include <map>

#include "bench_common.h"
#include "jit/backend.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig9", argc, argv);
    // Dynamic execution counts to report only node types that occur.
    std::map<jit::IrOp, uint64_t> freq;
    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunOptions o = baseOptions(name, driver::VmKind::PyPyJit);
        o.irAnnotations = true;
        driver::RunResult r = session.run(o);
        for (size_t i = 0; i < r.irNodeMeta.size(); ++i)
            freq[r.irNodeMeta[i].op] += r.irExecCounts[i];
    }

    std::vector<std::pair<jit::IrOp, uint32_t>> rows;
    for (const auto &[op, count] : freq) {
        if (count > 0)
            rows.emplace_back(op, jit::loweredInstCount(op));
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    std::printf("Figure 9: machine instructions per IR node type "
                "(lowering expansions observed in suite traces)\n");
    std::printf("%-22s %8s  %s\n", "IR node type", "insts", "");
    printRule(70);
    for (const auto &[op, n] : rows) {
        std::printf("%-22s %8u  %s\n", jit::irOpName(op), n,
                    std::string(n, '#').c_str());
    }
    printRule(70);
    return session.finish();
}
