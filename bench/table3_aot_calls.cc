/**
 * @file
 * Table III — significant AOT-compiled functions called from meta-traces.
 *
 * For each workload, the AOT entry points consuming at least 10% of
 * total execution when invoked from JIT-compiled code, with their source
 * classification (R/L/C/I/M). Shape to reproduce: pidigits dominated by
 * rbigint ops, django/template engines by ll_call_lookup_function and
 * string ops, nbody by C pow.
 */

#include "bench_common.h"
#include "rt/aot_registry.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("table3", argc, argv);
    std::printf("Table III: significant AOT-compiled functions from "
                "meta-traces (>= 10%% of execution)\n");
    std::printf("%-20s %6s  %s\n", "Benchmark", "%", "Src Function");
    printRule(78);

    const rt::AotRegistry &reg = rt::AotRegistry::instance();
    for (const std::string &name :
         selectWorkloads(figureWorkloads(), argc, argv)) {
        driver::RunResult r =
            session.run(baseOptions(name, driver::VmKind::PyPyJit));
        bool any = false;
        for (const auto &fn : r.aotFunctions) {
            double share = r.cycles > 0 ? fn.cycles / r.cycles : 0;
            if (share < 0.10)
                continue;
            const rt::AotFunction &meta = reg.fn(fn.fnId);
            std::printf("%-20s %5.1f%%  %c   %s\n",
                        any ? "" : name.c_str(), 100.0 * share,
                        rt::aotSourceTag(meta.source),
                        meta.name.c_str());
            any = true;
        }
        if (!any)
            std::printf("%-20s   (no AOT entry above 10%%)\n",
                        name.c_str());
    }
    printRule(78);
    std::printf("Src: R = RPython type intrinsics, L = RPython stdlib, "
                "C = external C, I = interpreter, M = module\n");
    return session.finish();
}
