/**
 * @file
 * Figure 5 — warmup curves: bytecode execution rate of the JIT VM
 * normalized to the CPython analog, with break-even points.
 *
 * For each benchmark we report the break-even instruction counts
 * against (a) the CPython-analog interpreter and (b) the translated
 * interpreter without the JIT, plus the eventual speedup. The paper's
 * shape: break-even vs the JIT-less interpreter comes very early;
 * break-even vs CPython comes later for modestly-sped-up benchmarks.
 */

#include "bench_common.h"

using namespace xlvm;
using namespace xlvm::bench;

int
main(int argc, char **argv)
{
    Session session("fig5", argc, argv);
    std::printf("Figure 5: JIT warmup break-even points "
                "(instructions; window capped)\n");
    std::printf("%-20s %14s %16s %12s\n", "Benchmark",
                "vs CPython*", "vs PyPy*-nojit", "final speedup");
    printRule(70);

    const std::vector<std::string> names =
        selectWorkloads(figureWorkloads(), argc, argv);
    std::vector<driver::RunOptions> runs;
    for (const std::string &name : names) {
        runs.push_back(baseOptions(name, driver::VmKind::CPythonLike));
        runs.push_back(baseOptions(name, driver::VmKind::PyPyNoJit));
        driver::RunOptions jitOpt =
            baseOptions(name, driver::VmKind::PyPyJit);
        jitOpt.workSampleInstrs = 20000;
        runs.push_back(jitOpt);
    }
    std::vector<driver::RunResult> res = session.sweep(runs);

    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const driver::RunResult &cpy = res[3 * i];
        const driver::RunResult &nojit = res[3 * i + 1];
        const driver::RunResult &jit = res[3 * i + 2];

        double cpyRate = cpy.instructions
                             ? double(cpy.work) / cpy.instructions
                             : 0;
        double nojitRate = nojit.instructions
                               ? double(nojit.work) / nojit.instructions
                               : 0;
        uint64_t beCpy =
            xlayer::breakEvenInstructions(jit.warmupCurve, cpyRate);
        uint64_t beNojit =
            xlayer::breakEvenInstructions(jit.warmupCurve, nojitRate);
        double speedup =
            jit.seconds > 0 ? cpy.seconds / jit.seconds : 0;

        auto fmt = [](uint64_t v) {
            return v == UINT64_MAX ? std::string("never(window)")
                                   : formatCount(v);
        };
        std::printf("%-20s %14s %16s %11.1fx\n", name.c_str(),
                    fmt(beCpy).c_str(), fmt(beNojit).c_str(), speedup);
    }
    printRule(70);
    std::printf("(break-even: earliest point where cumulative bytecodes "
                "on the JIT VM match the baseline's rate)\n");
    return session.finish();
}
