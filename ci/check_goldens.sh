#!/usr/bin/env bash
# Golden-snapshot regression gate.
#
# Regenerates the metrics report for every golden committed under
# tests/golden/ and compares it with xlvm-check-golden. Counters are
# deterministic regardless of --jobs, so any diff is a real behavior
# change: either fix the regression, or — when the change is intended
# to move counters — rerun with --update and commit the new goldens.
#
# In the default tier mode the gate runs four times: once with the
# sim-layer accelerators at their defaults (block memoization +
# superblock replay), once with XLVM_NO_SIM_MEMO=1 (both layers off),
# once with XLVM_NO_SIM_SUPERBLOCK=1 (block memo only), and once with
# the sampling profiler armed (XLVM_PROFILE). The first three cover the
# host-side accelerators, whose contract is that every modeled counter
# is bit-identical in any configuration; the extra passes enforce that
# contract on all 13 goldens and exclude only the accelerators' own
# telemetry sections (--ignore-section sim_memo / sim_superblock),
# whose counters legitimately shift when a layer is toggled (with the
# superblock off, block memoization absorbs its traffic). The profiled
# pass enforces the sampler's matching contract — sampling is pure
# host-side observation, so the report must match the golden exactly
# except for the "profiler" section (the sampler's own telemetry) —
# and, unlike the accelerator passes, runs in EVERY tier mode: the
# sampler must be non-perturbing under each tier policy. A fifth pass
# arms the fault-injection engine with a spec that can never fire
# (every site's nth is far beyond any real visit count), exercising
# the full shouldFire() bookkeeping path on every probe: arming alone
# must not move a single modeled counter, so the report must match the
# golden except for the engine's own host-side telemetry
# (--ignore-section jit_robustness). --update skips the extra passes
# (goldens are recorded with both layers on, the profiler off, and the
# fault engine disarmed).
#
# --tier-mode MODE selects the JIT tier policy (tier2 = default).
# Non-default modes compare against their own golden set
# (tests/golden/<mode>/) and ignore the jit_tiers section, whose
# per-tier byte/cycle split is pinned by the per-mode set itself; the
# accelerator (memo/superblock-off) passes only run in the default
# mode, the profiled pass in all modes. A missing per-mode
# golden set is a hard failure, not a skip — regenerate it with
# "ci/check_goldens.sh <build> --tier-mode <mode> --update" and commit.
#
# Usage: ci/check_goldens.sh [build-dir] [--jobs N] [--tier-mode M] [--update]
set -euo pipefail

cd "$(dirname "$0")/.."

build=build
jobs=$(nproc)
update=""
tier_mode=tier2
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) jobs=$2; shift 2 ;;
      --tier-mode) tier_mode=$2; shift 2 ;;
      --tier-mode=*) tier_mode=${1#--tier-mode=}; shift ;;
      --update) update="--update"; shift ;;
      *) build=$1; shift ;;
    esac
done

# Default mode compares the top-level set exactly; other modes keep
# their own set and skip the jit_tiers section (it is pinned per mode).
if [ "$tier_mode" = tier2 ]; then
    golden_dir=tests/golden
    ignore=""
else
    golden_dir=tests/golden/$tier_mode
    ignore="--ignore-section jit_tiers"
fi

if [ -n "$update" ]; then
    mkdir -p "$golden_dir"
elif ! ls "$golden_dir"/*.json > /dev/null 2>&1; then
    echo "FAIL: no golden set for tier mode '$tier_mode' at $golden_dir/" >&2
    echo "      regenerate: ci/check_goldens.sh $build --tier-mode $tier_mode --update" >&2
    exit 1
fi

# golden stem -> bench binary that regenerates it
bench_for() {
    case "$1" in
      table1) echo table1_pypy_suite ;;
      table2) echo table2_clbg ;;
      table3) echo table3_aot_calls ;;
      table4) echo table4_phase_uarch ;;
      fig2) echo fig2_phase_breakdown ;;
      fig3) echo fig3_phase_timeline ;;
      fig4) echo fig4_clbg_phases ;;
      fig5) echo fig5_warmup ;;
      fig6) echo fig6_ir_stats ;;
      fig7) echo fig7_ir_categories ;;
      fig8) echo fig8_ir_histogram ;;
      fig9) echo fig9_asm_per_ir ;;
      ablation_optimizer) echo ablation_optimizer ;;
      *) echo "" ;;
    esac
}

# On --update, (re)generate the full set from the default set's stems —
# a per-mode dir that is missing or partial must not shrink coverage.
# On check, iterate the per-mode set itself.
stems() {
    local g
    if [ -z "$update" ] && ls "$golden_dir"/*.json > /dev/null 2>&1; then
        for g in "$golden_dir"/*.json; do basename "$g" .json; done
    else
        for g in tests/golden/*.json; do basename "$g" .json; done
    fi
}

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
fail=0

for stem in $(stems); do
    bin=$(bench_for "$stem")
    if [ -z "$bin" ]; then
        echo "SKIP $stem: no bench binary mapped" >&2
        continue
    fi
    echo "== $stem ($bin, $jobs jobs, tier $tier_mode, memo on)"
    "$build/bench/$bin" --jobs "$jobs" --tier-mode "$tier_mode" \
        --report "json:$out/$stem.json" > /dev/null
    "$build/tools/xlvm-check-golden" "$out/$stem.json" \
        "$golden_dir/$stem.json" $ignore $update || fail=1
done

if [ -z "$update" ] && [ "$tier_mode" = tier2 ]; then
    for stem in $(stems); do
        bin=$(bench_for "$stem")
        [ -z "$bin" ] && continue
        echo "== $stem ($bin, $jobs jobs, memo off)"
        XLVM_NO_SIM_MEMO=1 "$build/bench/$bin" --jobs "$jobs" \
            --tier-mode "$tier_mode" \
            --report "json:$out/$stem.nomemo.json" > /dev/null
        "$build/tools/xlvm-check-golden" "$out/$stem.nomemo.json" \
            "$golden_dir/$stem.json" --ignore-section sim_memo \
            --ignore-section sim_superblock || fail=1
    done
    for stem in $(stems); do
        bin=$(bench_for "$stem")
        [ -z "$bin" ] && continue
        echo "== $stem ($bin, $jobs jobs, superblock off)"
        XLVM_NO_SIM_SUPERBLOCK=1 "$build/bench/$bin" --jobs "$jobs" \
            --tier-mode "$tier_mode" \
            --report "json:$out/$stem.nosb.json" > /dev/null
        "$build/tools/xlvm-check-golden" "$out/$stem.nosb.json" \
            "$golden_dir/$stem.json" --ignore-section sim_superblock \
            --ignore-section sim_memo || fail=1
    done
fi

# The profiled pass runs in EVERY tier mode (unlike the accelerator
# passes): sampling must be non-perturbing under each tier policy, and
# per-tier counters (jit_tiers) are part of what it must not perturb.
if [ -z "$update" ]; then
    for stem in $(stems); do
        bin=$(bench_for "$stem")
        [ -z "$bin" ] && continue
        echo "== $stem ($bin, $jobs jobs, tier $tier_mode, profiler on)"
        XLVM_PROFILE="$out/$stem.profile.json" "$build/bench/$bin" \
            --jobs "$jobs" --tier-mode "$tier_mode" \
            --report "json:$out/$stem.prof.json" > /dev/null
        "$build/tools/xlvm-check-golden" "$out/$stem.prof.json" \
            "$golden_dir/$stem.json" $ignore \
            --ignore-section profiler || fail=1
    done
fi

# The armed-fault pass (also every tier mode): XLVM_INJECT arms the
# deterministic fault engine at every site with an nth no run can
# reach, so each injection probe runs its full armed bookkeeping path
# but never fires. The engine's bit-identity contract says arming must
# not move any modeled counter; only its own telemetry (visit counts,
# the armed flag) may differ from the disarmed golden.
never="recorder:1000000000,optimizer:1000000000,backend:1000000000"
never="$never,trace_cache:1000000000,gc_hook:1000000000"
never="$never,sim_memo:1000000000"
if [ -z "$update" ]; then
    for stem in $(stems); do
        bin=$(bench_for "$stem")
        [ -z "$bin" ] && continue
        echo "== $stem ($bin, $jobs jobs, tier $tier_mode, faults armed)"
        XLVM_INJECT="$never" "$build/bench/$bin" \
            --jobs "$jobs" --tier-mode "$tier_mode" \
            --report "json:$out/$stem.armed.json" > /dev/null
        "$build/tools/xlvm-check-golden" "$out/$stem.armed.json" \
            "$golden_dir/$stem.json" $ignore \
            --ignore-section jit_robustness || fail=1
    done
fi

exit $fail
