#!/usr/bin/env bash
# Golden-snapshot regression gate.
#
# Regenerates the metrics report for every golden committed under
# tests/golden/ and compares it with xlvm-check-golden. Counters are
# deterministic regardless of --jobs, so any diff is a real behavior
# change: either fix the regression, or — when the change is intended
# to move counters — rerun with --update and commit the new goldens.
#
# The gate runs twice: once with the sim-layer block memoization active
# (the default) and once with XLVM_NO_SIM_MEMO=1. Memoization is a
# host-side accelerator whose contract is that every modeled counter is
# bit-identical either way; the second pass enforces that contract on
# all 13 goldens and excludes only the sim_memo telemetry section
# (--ignore-section), whose counters are legitimately zero when the
# layer is off. --update skips the second pass (goldens are recorded
# memo-on).
#
# Usage: ci/check_goldens.sh [build-dir] [--jobs N] [--update]
set -euo pipefail

cd "$(dirname "$0")/.."

build=build
jobs=$(nproc)
update=""
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) jobs=$2; shift 2 ;;
      --update) update="--update"; shift ;;
      *) build=$1; shift ;;
    esac
done

# golden stem -> bench binary that regenerates it
bench_for() {
    case "$1" in
      table1) echo table1_pypy_suite ;;
      table2) echo table2_clbg ;;
      table3) echo table3_aot_calls ;;
      table4) echo table4_phase_uarch ;;
      fig2) echo fig2_phase_breakdown ;;
      fig3) echo fig3_phase_timeline ;;
      fig4) echo fig4_clbg_phases ;;
      fig5) echo fig5_warmup ;;
      fig6) echo fig6_ir_stats ;;
      fig7) echo fig7_ir_categories ;;
      fig8) echo fig8_ir_histogram ;;
      fig9) echo fig9_asm_per_ir ;;
      ablation_optimizer) echo ablation_optimizer ;;
      *) echo "" ;;
    esac
}

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
fail=0

for golden in tests/golden/*.json; do
    stem=$(basename "$golden" .json)
    bin=$(bench_for "$stem")
    if [ -z "$bin" ]; then
        echo "SKIP $golden: no bench binary mapped" >&2
        continue
    fi
    echo "== $stem ($bin, $jobs jobs, memo on)"
    "$build/bench/$bin" --jobs "$jobs" \
        --report "json:$out/$stem.json" > /dev/null
    "$build/tools/xlvm-check-golden" "$out/$stem.json" "$golden" \
        $update || fail=1
done

if [ -z "$update" ]; then
    for golden in tests/golden/*.json; do
        stem=$(basename "$golden" .json)
        bin=$(bench_for "$stem")
        [ -z "$bin" ] && continue
        echo "== $stem ($bin, $jobs jobs, memo off)"
        XLVM_NO_SIM_MEMO=1 "$build/bench/$bin" --jobs "$jobs" \
            --report "json:$out/$stem.nomemo.json" > /dev/null
        "$build/tools/xlvm-check-golden" "$out/$stem.nomemo.json" \
            "$golden" --ignore-section sim_memo || fail=1
    done
fi

exit $fail
