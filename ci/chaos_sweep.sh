#!/usr/bin/env bash
# Fault-injection chaos gate.
#
# Sweeps the deterministic fault engine across every injection site,
# arming one first-visit fault per run on a reduced Table I workload
# set. The containment contract under test: an injected fault must be
# absorbed as a structured TraceAbort / degradation event — every run
# still completes with its expected program output — and the armed
# site must actually report a firing (a sweep that "passes" because
# the fault never triggered would test nothing; see --inject spec
# validation in bench_common.h for the same reasoning at parse time).
#
# Usage: ci/chaos_sweep.sh [build-dir] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

build=build
jobs=2
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) jobs=$2; shift 2 ;;
      --jobs=*) jobs=${1#--jobs=}; shift ;;
      *) build=$1; shift ;;
    esac
done

sites="recorder optimizer backend trace_cache gc_hook sim_memo"
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
fail=0

for site in $sites; do
    echo "== chaos: --inject $site:1"
    "$build/bench/table1_pypy_suite" --jobs "$jobs" \
        --workloads richards,chaos,float \
        --inject "$site:1" \
        --report "json:$out/chaos_$site.json" > /dev/null
    if grep -q '"completed": false' "$out/chaos_$site.json"; then
        echo "FAIL: $site:1 left a run incomplete — fault escaped" >&2
        fail=1
    fi
    if ! grep -Eq "\"fault_${site}_fired\": [1-9]" "$out/chaos_$site.json"
    then
        echo "FAIL: $site:1 never fired — the sweep tested nothing" >&2
        fail=1
    fi
done

exit $fail
