/**
 * @file
 * The cross-layer methodology end to end: run one workload and read the
 * same program at five layers — application output, interpreter work
 * rate, framework phases, JIT-IR statistics, and machine-level counters
 * — all collected from tagged annotation instructions intercepted at
 * the simulated hardware layer (the paper's nop + PinTool mechanism).
 */

#include <cstdio>

#include "driver/runner.h"
#include "rt/aot_registry.h"
#include "xlayer/phase.h"

int
main(int argc, char **argv)
{
    using namespace xlvm;

    const char *name = argc > 1 ? argv[1] : "django";
    driver::RunOptions o;
    o.workload = name;
    o.vm = driver::VmKind::PyPyJit;
    o.loopThreshold = 120;
    o.irAnnotations = true;
    o.maxInstructions = 200u * 1000 * 1000;
    driver::RunResult r = driver::runWorkload(o);

    std::printf("== application layer ==\n%s", r.output.c_str());

    std::printf("\n== interpreter layer ==\n");
    std::printf("bytecodes executed (work): %llu across %llu "
                "instructions (%.2f bytecodes/100 instr)\n",
                (unsigned long long)r.work,
                (unsigned long long)r.instructions,
                r.instructions ? 100.0 * r.work / r.instructions : 0.0);

    std::printf("\n== framework layer ==\n");
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        if (r.phaseShares[p] > 0.001) {
            std::printf("  %-10s %5.1f%% of cycles\n",
                        xlayer::phaseName(xlayer::Phase(p)),
                        100.0 * r.phaseShares[p]);
        }
    }
    std::printf("  loops=%llu bridges=%llu aborts=%llu deopts=%llu "
                "gc-minor=%llu\n",
                (unsigned long long)r.loopsCompiled,
                (unsigned long long)r.bridgesCompiled,
                (unsigned long long)r.tracesAborted,
                (unsigned long long)r.deopts,
                (unsigned long long)r.gcMinor);

    std::printf("\n== JIT-IR layer ==\n");
    std::printf("  %u IR nodes compiled\n", r.irNodesCompiled);
    std::printf("  top AOT entry points called from traces:\n");
    int shown = 0;
    for (const auto &fn : r.aotFunctions) {
        if (shown++ >= 5)
            break;
        std::printf("    %5.1f%%  %s\n",
                    r.cycles > 0 ? 100.0 * fn.cycles / r.cycles : 0.0,
                    rt::AotRegistry::instance().fn(fn.fnId).name.c_str());
    }

    std::printf("\n== microarchitecture layer ==\n");
    std::printf("  IPC %.2f, branch MPKI %.2f, branch rate %.3f\n",
                r.ipc, r.branchMpki, r.branchRate);
    std::printf("  JIT-phase IPC %.2f vs interpreter-phase IPC %.2f\n",
                r.phaseCounters[uint32_t(xlayer::Phase::Jit)].ipc(),
                r.phaseCounters[uint32_t(xlayer::Phase::Interpreter)]
                    .ipc());
    return 0;
}
