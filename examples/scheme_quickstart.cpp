/**
 * @file
 * Multi-language demonstration: a MiniRkt (Scheme) program on the same
 * meta-tracing framework — the Pycket analog. Named-let tail recursion
 * compiles to the same backward-jump merge points as Python loops, so
 * the JIT traces it identically.
 */

#include <cstdio>

#include "minipy/interp.h"
#include "minirkt/compiler.h"
#include "vm/context.h"

int
main()
{
    using namespace xlvm;

    const char *program = R"RKT(
(define (ack m n)
  (if (= m 0)
      (+ n 1)
      (if (= n 0)
          (ack (- m 1) 1)
          (ack (- m 1) (ack m (- n 1))))))

(define total 0)
(let loop ((i 0))
  (if (< i 200)
      (begin
        (set! total (+ total (ack 2 3)))
        (loop (+ i 1)))
      0))
(display total)
(newline)
)RKT";

    vm::VmConfig cfg;
    cfg.jit.loopThreshold = 40;
    vm::VmContext ctx(cfg);

    auto prog = minirkt::compileRkt(program, ctx.space);
    minipy::Interp interp(ctx, *prog);
    interp.run();

    std::printf("scheme output: %s", interp.output().c_str());
    std::printf("traces compiled: %zu, trace executions: %llu\n",
                ctx.registry.size(),
                (unsigned long long)ctx.events.traceEnters);
    std::printf("simulated time: %.6f s\n", ctx.core.seconds());
    return 0;
}
