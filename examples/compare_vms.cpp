/**
 * @file
 * Compare one workload across the modeled VM configurations and find
 * the JIT warmup break-even point (the Section V-D methodology).
 */

#include <cstdio>

#include "driver/runner.h"
#include "common/stats.h"
#include "xlayer/work_profiler.h"

int
main(int argc, char **argv)
{
    using namespace xlvm;

    const char *name = argc > 1 ? argv[1] : "crypto_pyaes";

    driver::RunOptions base;
    base.workload = name;
    base.loopThreshold = 120;
    base.maxInstructions = 200u * 1000 * 1000;
    base.workSampleInstrs = 20000;

    auto run = [&](driver::VmKind vm) {
        driver::RunOptions o = base;
        o.vm = vm;
        return driver::runWorkload(o);
    };

    driver::RunResult cpy = run(driver::VmKind::CPythonLike);
    driver::RunResult nojit = run(driver::VmKind::PyPyNoJit);
    driver::RunResult jit = run(driver::VmKind::PyPyJit);

    std::printf("workload %s (output %s)\n", name,
                cpy.output == jit.output ? "agrees across VMs"
                                         : "MISMATCH!");
    std::printf("%-14s %12s %8s %8s\n", "VM", "time (s)", "IPC",
                "MPKI");
    std::printf("%-14s %12.6f %8.2f %8.2f\n", "CPython*", cpy.seconds,
                cpy.ipc, cpy.branchMpki);
    std::printf("%-14s %12.6f %8.2f %8.2f\n", "PyPy*-nojit",
                nojit.seconds, nojit.ipc, nojit.branchMpki);
    std::printf("%-14s %12.6f %8.2f %8.2f\n", "PyPy*", jit.seconds,
                jit.ipc, jit.branchMpki);

    double cpyRate =
        cpy.instructions ? double(cpy.work) / cpy.instructions : 0;
    double nojitRate =
        nojit.instructions ? double(nojit.work) / nojit.instructions : 0;
    uint64_t beCpy =
        xlayer::breakEvenInstructions(jit.warmupCurve, cpyRate);
    uint64_t beNojit =
        xlayer::breakEvenInstructions(jit.warmupCurve, nojitRate);
    auto fmt = [](uint64_t v) {
        return v == UINT64_MAX ? std::string("beyond window")
                               : formatCount(v);
    };
    std::printf("\nJIT break-even vs CPython*:     %s instructions\n",
                fmt(beCpy).c_str());
    std::printf("JIT break-even vs PyPy*-nojit:  %s instructions\n",
                fmt(beNojit).c_str());
    std::printf("final speedup over CPython*:    %.2fx\n",
                jit.seconds > 0 ? cpy.seconds / jit.seconds : 0.0);
    return 0;
}
