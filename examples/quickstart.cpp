/**
 * @file
 * Quickstart: run a MiniPy program on the meta-tracing JIT VM and
 * inspect what the framework did — compiled traces, phase breakdown,
 * and the final trace IR (the PyPy-Log analog).
 */

#include <cstdio>

#include "minipy/compiler.h"
#include "minipy/interp.h"
#include "vm/context.h"
#include "xlayer/phase.h"

int
main()
{
    using namespace xlvm;

    const char *program = R"PY(
def fib_iter(n):
    a = 0
    b = 1
    i = 0
    while i < n:
        t = a + b
        a = b
        b = t
        i += 1
    return a

total = 0
for k in range(400):
    total += fib_iter(20)
print(total)
)PY";

    // Configure a VM: RPython-style interpreter + meta-tracing JIT.
    vm::VmConfig cfg;
    cfg.jit.loopThreshold = 50; // trace loops after 50 iterations
    vm::VmContext ctx(cfg);

    // Compile and run.
    auto prog = minipy::compileSource(program, ctx.space);
    minipy::Interp interp(ctx, *prog);
    interp.run();

    std::printf("program output: %s", interp.output().c_str());
    std::printf("simulated time: %.6f s (%llu instructions)\n",
                ctx.core.seconds(),
                (unsigned long long)ctx.core.totalInstructions());

    std::printf("\nJIT activity: %llu loops, %llu bridges, %llu deopts, "
                "%llu trace executions\n",
                (unsigned long long)ctx.events.loopsCompiled,
                (unsigned long long)ctx.events.bridgesCompiled,
                (unsigned long long)ctx.events.deopts,
                (unsigned long long)ctx.events.traceEnters);

    std::printf("\nphase breakdown:\n");
    auto shares = ctx.phases.phaseCycleShares();
    for (uint32_t p = 0; p < xlayer::kNumPhases; ++p) {
        if (shares[p] > 0.001) {
            std::printf("  %-10s %5.1f%%\n",
                        xlayer::phaseName(xlayer::Phase(p)),
                        100.0 * shares[p]);
        }
    }

    std::printf("\nfirst compiled trace (optimized IR):\n%s",
                ctx.registry.size()
                    ? ctx.registry.byId(0)->dump().c_str()
                    : "(none)\n");
    return 0;
}
