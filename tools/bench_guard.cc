/**
 * @file
 * xlvm-bench-guard — CI bench-smoke performance guard.
 *
 * Checks properties of freshly generated metrics reports against a
 * committed baseline (ci/bench_smoke_baseline.json):
 *
 *  1. Replay effectiveness: the aggregate replay hit rate across all
 *     fresh runs must meet --min-hit-rate. Since PR 8 the sim layer has
 *     two replay tiers — superblock segments absorb lookups that would
 *     otherwise hit the block memo — so the rate blends both:
 *     (memo.hits + sb.hits) / (all memo + sb lookups). A silent drop
 *     (an over-eager invalidation, a signature change that stops blocks
 *     from verifying) does not move any modeled counter, so the golden
 *     gate cannot see it — this guard can. --min-sb-hit-rate adds an
 *     optional floor on the superblock layer alone, so block memo
 *     picking up absorbed traffic cannot mask a dead sweep.
 *
 *  2. Modeled-cost regression: per matched run (workload + vm +
 *     tier mode), the fresh totals/cycles_fp may not exceed the
 *     baseline by more than --max-regression (default 10%). This is a
 *     coarse tripwire for the reduced smoke sweep; the golden gate pins
 *     exact values for the full set.
 *
 *  3. Tiering health (schema v4): --min-promotions asserts the multi
 *     mode smoke run actually promotes traces, and --max-tier1-share
 *     bounds the fraction of modeled compile work spent at tier 1
 *     (tier1_compile_insts / all compile insts). Both gates pass
 *     trivially when the report has no jit_tiers activity, so a
 *     default-mode-only invocation is unaffected.
 *
 *  4. Microbenchmark gate (--gbench): reads a gbench_trace_exec
 *     --benchmark_format=json output and checks the BM_SimStream_*
 *     family. Two properties: the best per-shape superblock-vs-blockmemo
 *     CPU-time ratio must meet --min-sb-speedup (the isolated-sweep
 *     speedup claim, a ratio within one process so host noise mostly
 *     cancels), and every variant of a shape must report the same
 *     modeled_cpi within a small tolerance (replay layers must not move
 *     modeled cycles per op — the microbench cross-check of the golden
 *     gate's bit-exactness contract).
 *
 * Accepts any number of fresh reports: the LAST positional is always
 * the baseline, every earlier one is a fresh report (so CI can feed the
 * default-mode and multi-mode sweeps through one invocation). --update
 * rewrites the baseline as the merged run list of all fresh reports.
 *
 * Exit codes: 0 ok (or --update rewrote the baseline), 1 guard failed,
 * 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "report/golden.h"
#include "report/json.h"

namespace {

using xlvm::report::Json;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <fresh.json>... <baseline.json> [--min-hit-rate X]\n"
        "          [--min-sb-hit-rate X] [--max-regression X]\n"
        "          [--min-promotions N] [--max-tier1-share X]\n"
        "          [--gbench FILE] [--min-sb-speedup X] [--update]\n"
        "\n"
        "  The last positional is the baseline; all earlier ones are\n"
        "  fresh reports (their runs are checked, and merged, in order).\n"
        "\n"
        "  --min-hit-rate X     minimum aggregate replay hit rate, block\n"
        "                       memo and superblock blended (default 0.5)\n"
        "  --min-sb-hit-rate X  minimum aggregate sim_superblock hit rate\n"
        "                       across fresh runs (default: no gate;\n"
        "                       fails on zero superblock activity)\n"
        "  --gbench FILE        gbench_trace_exec JSON output to check\n"
        "                       (BM_SimStream_* speedup + modeled_cpi)\n"
        "  --min-sb-speedup X   minimum best-shape superblock-vs-blockmemo\n"
        "                       CPU-time ratio in --gbench (default 5.0)\n"
        "  --max-sampler-overhead X  maximum best-shape relative cpu_time\n"
        "                       overhead of BM_SimStream_SuperblockProf\n"
        "                       over BM_SimStream_Superblock in --gbench\n"
        "                       (default: no gate)\n"
        "  --max-regression X   maximum allowed relative increase of a\n"
        "                       run's totals/cycles_fp over the baseline\n"
        "                       (default 0.10)\n"
        "  --min-promotions N   minimum total jit_tiers/promotions across\n"
        "                       all fresh runs (default 0 = no gate)\n"
        "  --max-tier1-share X  maximum tier1_compile_insts share of all\n"
        "                       modeled compile insts (default: no gate;\n"
        "                       passes when no compile activity at all)\n"
        "  --update             rewrite the baseline from the merged\n"
        "                       fresh reports and exit 0\n",
        argv0);
}

const Json *
runMetric(const Json &run, const char *section, const char *name)
{
    const Json *metrics = run.get("metrics");
    if (!metrics)
        return nullptr;
    const Json *sec = metrics->get(section);
    return sec ? sec->get(name) : nullptr;
}

/**
 * Run identity for baseline matching. Includes the tier mode so the
 * same workload smoked under the default and multi policies keeps two
 * distinct baseline entries. Pre-v4 reports have no config/tier_mode;
 * they match as the default tier-2 policy.
 */
std::string
runKey(const Json &run)
{
    const Json *w = run.get("workload");
    const Json *vm = run.get("vm");
    static const char *kModes[] = {"off", "tier1", "tier2", "multi"};
    const Json *tier = runMetric(run, "config", "tier_mode");
    uint64_t t = tier ? tier->asUInt() : 2;
    std::string mode = t < 4 ? kModes[t] : std::to_string(t);
    return (w ? w->asString() : "?") + "|" + (vm ? vm->asString() : "?") +
           "|" + mode;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xlvm::report;

    std::vector<std::string> paths; // fresh..., baseline last
    double minHitRate = 0.5;
    double minSbHitRate = -1.0; // < 0 = gate off
    double maxRegression = 0.10;
    uint64_t minPromotions = 0;
    double maxTier1Share = -1.0; // < 0 = gate off
    std::string gbenchPath;
    double minSbSpeedup = 5.0;
    double maxSamplerOverhead = -1.0; // < 0 = gate off
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--update") == 0) {
            update = true;
        } else if (std::strcmp(a, "--min-hit-rate") == 0 && i + 1 < argc) {
            minHitRate = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--min-hit-rate=", 15) == 0) {
            minHitRate = std::strtod(a + 15, nullptr);
        } else if (std::strcmp(a, "--min-sb-hit-rate") == 0 &&
                   i + 1 < argc) {
            minSbHitRate = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--min-sb-hit-rate=", 18) == 0) {
            minSbHitRate = std::strtod(a + 18, nullptr);
        } else if (std::strcmp(a, "--gbench") == 0 && i + 1 < argc) {
            gbenchPath = argv[++i];
        } else if (std::strncmp(a, "--gbench=", 9) == 0) {
            gbenchPath = a + 9;
        } else if (std::strcmp(a, "--min-sb-speedup") == 0 &&
                   i + 1 < argc) {
            minSbSpeedup = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--min-sb-speedup=", 17) == 0) {
            minSbSpeedup = std::strtod(a + 17, nullptr);
        } else if (std::strcmp(a, "--max-sampler-overhead") == 0 &&
                   i + 1 < argc) {
            maxSamplerOverhead = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--max-sampler-overhead=", 23) == 0) {
            maxSamplerOverhead = std::strtod(a + 23, nullptr);
        } else if (std::strcmp(a, "--max-regression") == 0 &&
                   i + 1 < argc) {
            maxRegression = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--max-regression=", 17) == 0) {
            maxRegression = std::strtod(a + 17, nullptr);
        } else if (std::strcmp(a, "--min-promotions") == 0 &&
                   i + 1 < argc) {
            minPromotions = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(a, "--min-promotions=", 17) == 0) {
            minPromotions = std::strtoull(a + 17, nullptr, 10);
        } else if (std::strcmp(a, "--max-tier1-share") == 0 &&
                   i + 1 < argc) {
            maxTier1Share = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--max-tier1-share=", 18) == 0) {
            maxTier1Share = std::strtod(a + 18, nullptr);
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.size() < 2) {
        usage(argv[0]);
        return 2;
    }
    std::string basePath = paths.back();
    paths.pop_back();

    std::string err;
    std::vector<Json> freshDocs;
    std::vector<const Json *> freshRuns; // flattened across all docs
    for (const std::string &p : paths) {
        Json doc;
        if (!loadReport(p, &doc, &err)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            return 2;
        }
        const Json *runs = doc.get("runs");
        if (!runs || !runs->isArray() || runs->size() == 0) {
            std::fprintf(stderr, "%s: %s has no runs\n", argv[0],
                         p.c_str());
            return 2;
        }
        freshDocs.push_back(std::move(doc));
    }
    for (const Json &doc : freshDocs)
        for (const Json &run : doc.get("runs")->items())
            freshRuns.push_back(&run);

    if (update) {
        // Merge: header of the first fresh doc, runs of all of them.
        Json merged = Json::object();
        for (const auto &kv : freshDocs.front().members()) {
            if (kv.first != "runs")
                merged.set(kv.first, kv.second);
        }
        Json runs = Json::array();
        for (const Json *run : freshRuns)
            runs.push(*run);
        merged.set("runs", std::move(runs));

        std::ofstream f(basePath, std::ios::binary | std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         basePath.c_str());
            return 2;
        }
        std::string payload = merged.dump(2) + "\n";
        f.write(payload.data(), std::streamsize(payload.size()));
        f.flush();
        if (!f) {
            std::fprintf(stderr, "%s: write failed for %s\n", argv[0],
                         basePath.c_str());
            return 2;
        }
        std::printf("updated %s from %zu fresh report(s), %zu run(s)\n",
                    basePath.c_str(), paths.size(), freshRuns.size());
        return 0;
    }

    Json base;
    if (!loadReport(basePath, &base, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    const Json *baseRuns = base.get("runs");
    if (!baseRuns || !baseRuns->isArray()) {
        std::fprintf(stderr, "%s: %s has no runs\n", argv[0],
                     basePath.c_str());
        return 2;
    }

    int fail = 0;

    // 1. Aggregate replay hit rate, block memo and superblock blended
    // (superblock segments absorb lookups the memo would otherwise
    // serve, so neither layer's rate is meaningful alone).
    uint64_t hits = 0, misses = 0, sbHits = 0, sbMisses = 0;
    for (const Json *run : freshRuns) {
        const Json *h = runMetric(*run, "sim_memo", "hits");
        const Json *m = runMetric(*run, "sim_memo", "misses");
        const Json *sh = runMetric(*run, "sim_superblock", "hits");
        const Json *sm = runMetric(*run, "sim_superblock", "misses");
        hits += h ? h->asUInt() : 0;
        misses += m ? m->asUInt() : 0;
        sbHits += sh ? sh->asUInt() : 0;
        sbMisses += sm ? sm->asUInt() : 0;
    }
    uint64_t lookups = hits + misses + sbHits + sbMisses;
    if (lookups == 0) {
        std::fprintf(stderr,
                     "FAIL: no sim_memo/sim_superblock activity in the "
                     "fresh reports — the smoke sweep must run with the "
                     "replay layers enabled\n");
        fail = 1;
    } else {
        double rate = double(hits + sbHits) / double(lookups);
        std::printf("replay aggregate hit rate: %.4f "
                    "(memo %llu/%llu, superblock %llu/%llu, floor "
                    "%.2f)\n",
                    rate, (unsigned long long)hits,
                    (unsigned long long)(hits + misses),
                    (unsigned long long)sbHits,
                    (unsigned long long)(sbHits + sbMisses), minHitRate);
        if (rate < minHitRate) {
            std::fprintf(stderr,
                         "FAIL: blended replay hit rate %.4f below "
                         "floor %.2f\n",
                         rate, minHitRate);
            fail = 1;
        }
    }
    if (minSbHitRate >= 0.0) {
        if (sbHits + sbMisses == 0) {
            std::fprintf(stderr,
                         "FAIL: --min-sb-hit-rate given but the fresh "
                         "reports have no superblock activity — the "
                         "sweep layer is not arming\n");
            fail = 1;
        } else {
            double rate = double(sbHits) / double(sbHits + sbMisses);
            std::printf("sim_superblock aggregate hit rate: %.4f "
                        "(%llu / %llu, floor %.2f)\n",
                        rate, (unsigned long long)sbHits,
                        (unsigned long long)(sbHits + sbMisses),
                        minSbHitRate);
            if (rate < minSbHitRate) {
                std::fprintf(stderr,
                             "FAIL: sim_superblock hit rate %.4f below "
                             "floor %.2f\n",
                             rate, minSbHitRate);
                fail = 1;
            }
        }
    }

    // 2. Tiering health: promotions floor + tier-1 compile-work cap.
    uint64_t promotions = 0, t1Insts = 0, t2Insts = 0;
    for (const Json *run : freshRuns) {
        const Json *p = runMetric(*run, "jit_tiers", "promotions");
        const Json *a = runMetric(*run, "jit_tiers", "tier1_compile_insts");
        const Json *b = runMetric(*run, "jit_tiers", "tier2_compile_insts");
        promotions += p ? p->asUInt() : 0;
        t1Insts += a ? a->asUInt() : 0;
        t2Insts += b ? b->asUInt() : 0;
    }
    if (minPromotions > 0) {
        std::printf("jit_tiers promotions: %llu (floor %llu)\n",
                    (unsigned long long)promotions,
                    (unsigned long long)minPromotions);
        if (promotions < minPromotions) {
            std::fprintf(stderr,
                         "FAIL: %llu promotion(s) across fresh runs, "
                         "floor is %llu — the multi-tier smoke run is "
                         "not promoting\n",
                         (unsigned long long)promotions,
                         (unsigned long long)minPromotions);
            fail = 1;
        }
    }
    if (maxTier1Share >= 0.0 && t1Insts + t2Insts > 0) {
        double share = double(t1Insts) / double(t1Insts + t2Insts);
        std::printf("tier-1 compile-insts share: %.4f "
                    "(%llu / %llu, cap %.2f)\n",
                    share, (unsigned long long)t1Insts,
                    (unsigned long long)(t1Insts + t2Insts),
                    maxTier1Share);
        if (share > maxTier1Share) {
            std::fprintf(stderr,
                         "FAIL: tier-1 compile share %.4f above cap "
                         "%.2f — baseline compiles are eating the "
                         "modeled compile budget\n",
                         share, maxTier1Share);
            fail = 1;
        }
    }

    // 3. Per-run modeled-cost regression vs baseline.
    for (const Json *run : freshRuns) {
        std::string key = runKey(*run);
        const Json *match = nullptr;
        for (const Json &b : baseRuns->items()) {
            if (runKey(b) == key) {
                match = &b;
                break;
            }
        }
        if (!match) {
            std::fprintf(stderr,
                         "FAIL: run %s missing from baseline %s "
                         "(rerun with --update?)\n",
                         key.c_str(), basePath.c_str());
            fail = 1;
            continue;
        }
        const Json *fc = runMetric(*run, "totals", "cycles_fp");
        const Json *bc = runMetric(*match, "totals", "cycles_fp");
        if (!fc || !bc || bc->asUInt() == 0) {
            std::fprintf(stderr, "FAIL: %s: missing totals/cycles_fp\n",
                         key.c_str());
            fail = 1;
            continue;
        }
        double rel = double(fc->asUInt()) / double(bc->asUInt()) - 1.0;
        const char *verdict = rel > maxRegression ? "FAIL" : "ok";
        std::printf("%s %s: cycles_fp %llu vs baseline %llu (%+.2f%%)\n",
                    verdict, key.c_str(),
                    (unsigned long long)fc->asUInt(),
                    (unsigned long long)bc->asUInt(), rel * 100.0);
        if (rel > maxRegression)
            fail = 1;
    }

    // 4. gbench_trace_exec microbenchmark gate: isolated superblock
    // speedup (a within-process ratio, so host noise mostly cancels)
    // plus modeled_cpi agreement across the variants of each shape.
    if (!gbenchPath.empty()) {
        std::ifstream gf(gbenchPath, std::ios::binary);
        if (!gf) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         gbenchPath.c_str());
            return 2;
        }
        std::string text((std::istreambuf_iterator<char>(gf)),
                         std::istreambuf_iterator<char>());
        // google-benchmark emits bare NaN/Infinity tokens for aggregate
        // statistics of zero-mean counters (e.g. the cv of a hit rate
        // that is identically 0); they are not valid JSON, so neutralize
        // them outside string literals before parsing.
        bool instr = false;
        for (size_t i = 0; i < text.size(); ++i) {
            char c = text[i];
            if (instr) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    instr = false;
                continue;
            }
            if (c == '"') {
                instr = true;
            } else if (c == 'N' && text.compare(i, 3, "NaN") == 0) {
                text.replace(i, 3, "0");
            } else if (c == 'I' && text.compare(i, 8, "Infinity") == 0) {
                text.replace(i, 8, "0");  // a leading '-' parses as -0
            }
        }
        std::string perr;
        Json gdoc = Json::parse(text, &perr);
        if (!perr.empty() || !gdoc.isObject()) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                         gbenchPath.c_str(),
                         perr.empty() ? "not a JSON object" : perr.c_str());
            return 2;
        }
        struct Var
        {
            double cpu = 0.0;
            double cpi = -1.0;
        };
        // Per-iteration entries feed the gate by default; when the bench
        // ran with --benchmark_repetitions, the median aggregates are
        // preferred (and with --benchmark_report_aggregates_only they
        // are all there is).
        std::map<std::string, std::map<std::string, Var>> shapes, medians;
        const Json *bms = gdoc.get("benchmarks");
        if (bms && bms->isArray()) {
            for (const Json &bm : bms->items()) {
                bool isMedian = false;
                const Json *rt = bm.get("run_type");
                if (rt && rt->asString() == "aggregate") {
                    const Json *an = bm.get("aggregate_name");
                    if (!an || an->asString() != "median")
                        continue;
                    isMedian = true;
                }
                const Json *nm = bm.get("name");
                const Json *ct = bm.get("cpu_time");
                if (!nm || !ct)
                    continue;
                std::string name = nm->asString();
                static const char kSuf[] = "_median";
                const size_t sufLen = sizeof(kSuf) - 1;
                if (isMedian && name.size() > sufLen &&
                    name.compare(name.size() - sufLen, sufLen, kSuf) == 0)
                    name.resize(name.size() - sufLen);
                static const char kPfx[] = "BM_SimStream_";
                const size_t pfxLen = sizeof(kPfx) - 1;
                if (name.compare(0, pfxLen, kPfx) != 0)
                    continue;
                size_t slash = name.find('/', pfxLen);
                if (slash == std::string::npos)
                    continue;
                Var v;
                v.cpu = ct->asDouble();
                const Json *cpi = bm.get("modeled_cpi");
                v.cpi = cpi ? cpi->asDouble() : -1.0;
                (isMedian ? medians : shapes)[name.substr(slash)]
                    [name.substr(pfxLen, slash - pfxLen)] = v;
            }
        }
        if (!medians.empty())
            shapes = std::move(medians);
        if (shapes.empty()) {
            std::fprintf(stderr,
                         "FAIL: %s has no BM_SimStream_* entries — was "
                         "the bench filtered out?\n",
                         gbenchPath.c_str());
            fail = 1;
        }
        double best = 0.0;
        std::string bestShape;
        for (const auto &sv : shapes) {
            // modeled_cpi agreement: every variant models the same
            // instruction stream, so the replay layers must not move
            // cycles per op (tolerance covers warmup-fraction jitter
            // from differing gbench iteration counts).
            double lo = 0.0, hi = 0.0;
            bool any = false;
            for (const auto &vv : sv.second) {
                if (vv.second.cpi < 0)
                    continue;
                lo = any ? std::min(lo, vv.second.cpi) : vv.second.cpi;
                hi = any ? std::max(hi, vv.second.cpi) : vv.second.cpi;
                any = true;
            }
            if (any && hi - lo > 0.005) {
                std::fprintf(stderr,
                             "FAIL: modeled_cpi drift %.6f..%.6f across "
                             "BM_SimStream_*%s variants — a replay "
                             "layer is changing modeled counters\n",
                             lo, hi, sv.first.c_str());
                fail = 1;
            }
            auto bmIt = sv.second.find("BlockMemo");
            auto sbIt = sv.second.find("Superblock");
            if (bmIt == sv.second.end() || sbIt == sv.second.end() ||
                sbIt->second.cpu <= 0.0)
                continue;
            double ratio = bmIt->second.cpu / sbIt->second.cpu;
            std::printf("gbench %s: superblock %.0f vs block-memo %.0f "
                        "cpu -> %.2fx\n",
                        sv.first.c_str(), sbIt->second.cpu,
                        bmIt->second.cpu, ratio);
            if (ratio > best) {
                best = ratio;
                bestShape = sv.first;
            }
        }
        if (!shapes.empty()) {
            if (best <= 0.0) {
                std::fprintf(stderr,
                             "FAIL: no shape with both BlockMemo and "
                             "Superblock variants in %s\n",
                             gbenchPath.c_str());
                fail = 1;
            } else {
                std::printf("superblock best-shape speedup: %.2fx on %s "
                            "(floor %.2f)\n",
                            best, bestShape.c_str(), minSbSpeedup);
                if (best < minSbSpeedup) {
                    std::fprintf(stderr,
                                 "FAIL: superblock speedup %.2fx below "
                                 "floor %.2fx\n",
                                 best, minSbSpeedup);
                    fail = 1;
                }
            }
        }

        // Sampler wall-clock overhead: SuperblockProf runs the same
        // sweep with the cycle sampler armed, so its cpu_time over the
        // plain variant is the armed-sampler cost. Gate on the best
        // (lowest-overhead) shape — a within-process ratio, but CI
        // runners are noisy enough that the worst shape would flake.
        if (maxSamplerOverhead >= 0.0) {
            bool ovFound = false;
            double bestOv = 0.0; // can be negative: noise on fast shapes
            std::string bestOvShape;
            for (const auto &sv : shapes) {
                auto sbIt = sv.second.find("Superblock");
                auto pfIt = sv.second.find("SuperblockProf");
                if (sbIt == sv.second.end() || pfIt == sv.second.end() ||
                    sbIt->second.cpu <= 0.0)
                    continue;
                double ov = pfIt->second.cpu / sbIt->second.cpu - 1.0;
                std::printf("gbench %s: sampler-on %.0f vs off %.0f cpu "
                            "-> %+.2f%% overhead\n",
                            sv.first.c_str(), pfIt->second.cpu,
                            sbIt->second.cpu, ov * 100.0);
                if (!ovFound || ov < bestOv) {
                    ovFound = true;
                    bestOv = ov;
                    bestOvShape = sv.first;
                }
            }
            if (!ovFound) {
                std::fprintf(stderr,
                             "FAIL: --max-sampler-overhead given but no "
                             "shape has both Superblock and "
                             "SuperblockProf variants in %s\n",
                             gbenchPath.c_str());
                fail = 1;
            } else {
                std::printf("sampler best-shape overhead: %+.2f%% on %s "
                            "(cap %.2f%%)\n",
                            bestOv * 100.0, bestOvShape.c_str(),
                            maxSamplerOverhead * 100.0);
                if (bestOv > maxSamplerOverhead) {
                    std::fprintf(stderr,
                                 "FAIL: armed-sampler overhead %+.2f%% "
                                 "above cap %.2f%%\n",
                                 bestOv * 100.0,
                                 maxSamplerOverhead * 100.0);
                    fail = 1;
                }
            }
        }
    }

    return fail;
}
