/**
 * @file
 * xlvm-bench-guard — CI bench-smoke performance guard.
 *
 * Checks two properties of a freshly generated metrics report against a
 * committed baseline (ci/bench_smoke_baseline.json):
 *
 *  1. Memoization effectiveness: the aggregate sim_memo hit rate across
 *     all runs with memo activity must meet --min-hit-rate. A silent
 *     drop in hit rate (an over-eager invalidation, a signature change
 *     that stops blocks from verifying) does not move any modeled
 *     counter, so the golden gate cannot see it — this guard can.
 *
 *  2. Modeled-cost regression: per matched run (workload + vm), the
 *     fresh totals/cycles_fp may not exceed the baseline by more than
 *     --max-regression (default 10%). This is a coarse tripwire for the
 *     reduced smoke sweep; the golden gate pins exact values for the
 *     full set.
 *
 * Exit codes: 0 ok (or --update rewrote the baseline), 1 guard failed,
 * 2 usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "report/golden.h"
#include "report/json.h"

namespace {

using xlvm::report::Json;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <fresh.json> <baseline.json> [--min-hit-rate X]\n"
        "          [--max-regression X] [--update]\n"
        "\n"
        "  --min-hit-rate X    minimum aggregate sim_memo hit rate over\n"
        "                      runs with memo activity (default 0.5)\n"
        "  --max-regression X  maximum allowed relative increase of a\n"
        "                      run's totals/cycles_fp over the baseline\n"
        "                      (default 0.10)\n"
        "  --update            rewrite the baseline from the fresh\n"
        "                      report and exit 0\n",
        argv0);
}

const Json *
runMetric(const Json &run, const char *section, const char *name)
{
    const Json *metrics = run.get("metrics");
    if (!metrics)
        return nullptr;
    const Json *sec = metrics->get(section);
    return sec ? sec->get(name) : nullptr;
}

std::string
runKey(const Json &run)
{
    const Json *w = run.get("workload");
    const Json *vm = run.get("vm");
    return (w ? w->asString() : "?") + "|" + (vm ? vm->asString() : "?");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xlvm::report;

    std::string freshPath, basePath;
    double minHitRate = 0.5;
    double maxRegression = 0.10;
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--update") == 0) {
            update = true;
        } else if (std::strcmp(a, "--min-hit-rate") == 0 && i + 1 < argc) {
            minHitRate = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--min-hit-rate=", 15) == 0) {
            minHitRate = std::strtod(a + 15, nullptr);
        } else if (std::strcmp(a, "--max-regression") == 0 &&
                   i + 1 < argc) {
            maxRegression = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--max-regression=", 17) == 0) {
            maxRegression = std::strtod(a + 17, nullptr);
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
            usage(argv[0]);
            return 2;
        } else if (freshPath.empty()) {
            freshPath = a;
        } else if (basePath.empty()) {
            basePath = a;
        } else {
            std::fprintf(stderr, "%s: too many arguments\n", argv[0]);
            usage(argv[0]);
            return 2;
        }
    }
    if (freshPath.empty() || basePath.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::string err;
    Json fresh;
    if (!loadReport(freshPath, &fresh, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    const Json *freshRuns = fresh.get("runs");
    if (!freshRuns || !freshRuns->isArray() || freshRuns->size() == 0) {
        std::fprintf(stderr, "%s: %s has no runs\n", argv[0],
                     freshPath.c_str());
        return 2;
    }

    if (update) {
        std::ofstream f(basePath, std::ios::binary | std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         basePath.c_str());
            return 2;
        }
        std::string payload = fresh.dump(2) + "\n";
        f.write(payload.data(), std::streamsize(payload.size()));
        f.flush();
        if (!f) {
            std::fprintf(stderr, "%s: write failed for %s\n", argv[0],
                         basePath.c_str());
            return 2;
        }
        std::printf("updated %s from %s\n", basePath.c_str(),
                    freshPath.c_str());
        return 0;
    }

    Json base;
    if (!loadReport(basePath, &base, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    const Json *baseRuns = base.get("runs");
    if (!baseRuns || !baseRuns->isArray()) {
        std::fprintf(stderr, "%s: %s has no runs\n", argv[0],
                     basePath.c_str());
        return 2;
    }

    int fail = 0;

    // 1. Aggregate memoization hit rate.
    uint64_t hits = 0, misses = 0;
    for (const Json &run : freshRuns->items()) {
        const Json *h = runMetric(run, "sim_memo", "hits");
        const Json *m = runMetric(run, "sim_memo", "misses");
        hits += h ? h->asUInt() : 0;
        misses += m ? m->asUInt() : 0;
    }
    if (hits + misses == 0) {
        std::fprintf(stderr,
                     "FAIL: no sim_memo activity in %s — the smoke "
                     "sweep must run with memoization enabled\n",
                     freshPath.c_str());
        fail = 1;
    } else {
        double rate = double(hits) / double(hits + misses);
        std::printf("sim_memo aggregate hit rate: %.4f "
                    "(%llu hits / %llu lookups, floor %.2f)\n",
                    rate, (unsigned long long)hits,
                    (unsigned long long)(hits + misses), minHitRate);
        if (rate < minHitRate) {
            std::fprintf(stderr,
                         "FAIL: sim_memo hit rate %.4f below floor "
                         "%.2f\n",
                         rate, minHitRate);
            fail = 1;
        }
    }

    // 2. Per-run modeled-cost regression vs baseline.
    for (const Json &run : freshRuns->items()) {
        std::string key = runKey(run);
        const Json *match = nullptr;
        for (const Json &b : baseRuns->items()) {
            if (runKey(b) == key) {
                match = &b;
                break;
            }
        }
        if (!match) {
            std::fprintf(stderr,
                         "FAIL: run %s missing from baseline %s "
                         "(rerun with --update?)\n",
                         key.c_str(), basePath.c_str());
            fail = 1;
            continue;
        }
        const Json *fc = runMetric(run, "totals", "cycles_fp");
        const Json *bc = runMetric(*match, "totals", "cycles_fp");
        if (!fc || !bc || bc->asUInt() == 0) {
            std::fprintf(stderr, "FAIL: %s: missing totals/cycles_fp\n",
                         key.c_str());
            fail = 1;
            continue;
        }
        double rel = double(fc->asUInt()) / double(bc->asUInt()) - 1.0;
        const char *verdict = rel > maxRegression ? "FAIL" : "ok";
        std::printf("%s %s: cycles_fp %llu vs baseline %llu (%+.2f%%)\n",
                    verdict, key.c_str(),
                    (unsigned long long)fc->asUInt(),
                    (unsigned long long)bc->asUInt(), rel * 100.0);
        if (rel > maxRegression)
            fail = 1;
    }

    return fail;
}
