/**
 * @file
 * xlvm-trace — inspector for streamed cross-layer event traces.
 *
 * Operates on the Chrome trace-event JSON written by the bench
 * harness's --trace flag (or XLVM_TRACE). The same file both loads in
 * ui.perfetto.dev and carries full-fidelity per-event args, so the
 * inspector needs no second format. Exit codes: 0 ok, 1 command
 * failure, 2 usage/I-O error.
 *
 *   xlvm-trace dump      <trace.json> [filter flags]
 *   xlvm-trace summarize <trace.json> [--top N] [--json] [filter flags]
 *   xlvm-trace filter    <trace.json> -o out.json [filter flags]
 *   xlvm-trace export    <trace.json> --chrome out.json [filter flags]
 *
 * Filter flags:
 *   --tag T          annotation tag, by name (deopt, gc_minor, ...) or
 *                    number
 *   --phase P        phase name (interp, tracing, jit, jit-call, gc,
 *                    blackhole, native)
 *   --cycle-range A:B  keep events with A <= simulated cycle <= B
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report/golden.h"
#include "report/trace_export.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> <trace.json> [options]\n"
        "\n"
        "commands:\n"
        "  dump       print every event, one line each\n"
        "  summarize  per-phase event counts, instants, top guard\n"
        "             failures, compile/deopt timeline\n"
        "  filter     write the matching subset as a new trace file\n"
        "             (-o out.json, \"-\" = stdout)\n"
        "  export     re-emit as Chrome trace-event JSON\n"
        "             (--chrome out.json), e.g. after filtering\n"
        "\n"
        "options:\n"
        "  --tag T            keep only tag T (name or number)\n"
        "  --phase P          keep only events in phase P\n"
        "  --cycle-range A:B  keep only cycles A..B (inclusive)\n"
        "  --top N            summarize: top-N guard failures (10)\n"
        "  --json             summarize: machine-readable output\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xlvm::report;

    if (argc >= 2 && (std::strcmp(argv[1], "-h") == 0 ||
                      std::strcmp(argv[1], "--help") == 0)) {
        usage(argv[0]);
        return 0;
    }
    if (argc < 3) {
        usage(argv[0]);
        return 2;
    }
    std::string command = argv[1];
    std::string inPath;
    std::string outPath;
    TraceFilter filter;
    size_t topN = 10;
    bool jsonOut = false;

    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--tag") == 0 && i + 1 < argc) {
            filter.tag = annotTagFromString(argv[++i]);
            if (filter.tag < 0) {
                std::fprintf(stderr, "%s: unknown tag '%s'\n", argv[0],
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(a, "--phase") == 0 && i + 1 < argc) {
            filter.phase = argv[++i];
        } else if (std::strcmp(a, "--cycle-range") == 0 && i + 1 < argc) {
            const char *spec = argv[++i];
            const char *colon = std::strchr(spec, ':');
            if (!colon) {
                std::fprintf(stderr,
                             "%s: --cycle-range expects A:B, got '%s'\n",
                             argv[0], spec);
                return 2;
            }
            filter.cycleMin = std::strtoull(spec, nullptr, 10);
            filter.cycleMax = std::strtoull(colon + 1, nullptr, 10);
        } else if (std::strcmp(a, "--top") == 0 && i + 1 < argc) {
            topN = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(a, "--json") == 0) {
            jsonOut = true;
        } else if (std::strcmp(a, "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(a, "--chrome") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (a[0] == '-' && a[1] != '\0') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
            usage(argv[0]);
            return 2;
        } else if (inPath.empty()) {
            inPath = a;
        } else {
            std::fprintf(stderr, "%s: too many arguments\n", argv[0]);
            return 2;
        }
    }
    if (inPath.empty()) {
        std::fprintf(stderr, "%s: no trace file given\n", argv[0]);
        return 2;
    }

    std::string err;
    Json doc;
    if (!loadReport(inPath, &doc, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    const Json *events = doc.get("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "%s: %s has no traceEvents array (not an xlvm "
                     "trace export, or truncated?)\n",
                     argv[0], inPath.c_str());
        return 2;
    }

    if (filter.active())
        doc = filterChromeTrace(doc, filter);

    if (command == "dump") {
        std::string text = dumpChromeTrace(doc);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (command == "summarize") {
        Json summary = summarizeChromeTrace(doc, topN);
        std::string text = jsonOut ? summary.dump(2) + "\n"
                                   : formatTraceSummary(summary);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (command == "filter" || command == "export") {
        if (outPath.empty()) {
            std::fprintf(stderr,
                         "%s: %s needs an output path (%s)\n", argv[0],
                         command.c_str(),
                         command == "filter" ? "-o out.json"
                                             : "--chrome out.json");
            return 2;
        }
        if (!writeChromeTrace(doc, outPath, &err)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            return 1;
        }
        return 0;
    }

    std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                 command.c_str());
    usage(argv[0]);
    return 2;
}
