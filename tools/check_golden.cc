/**
 * @file
 * xlvm-check-golden — golden-snapshot regression gate.
 *
 * Compares a freshly generated metrics report against a committed
 * golden. Deterministic integer counters must match bit-exactly;
 * derived floats compare under --rtol. Exit codes:
 *   0  reports agree (or --update rewrote the golden)
 *   1  counter drift (a unified diff of drifted counters is printed)
 *   2  usage or I/O error
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "report/golden.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <fresh.json> <golden.json> [--rtol X] [--update]\n"
        "          [--ignore-section NAME]...\n"
        "\n"
        "Compares a fresh metrics report against a committed golden\n"
        "snapshot. Integer counters must match exactly; floats compare\n"
        "under the relative tolerance --rtol (default 1e-6).\n"
        "\n"
        "  --rtol X   relative tolerance for derived float metrics\n"
        "  --ignore-section NAME\n"
        "             skip object key NAME wherever it appears (both\n"
        "             sides; repeatable). The memo-off golden pass uses\n"
        "             --ignore-section sim_memo since those host-side\n"
        "             counters legitimately differ between gate runs.\n"
        "  --update   on drift, overwrite the golden with the fresh\n"
        "             report (use when a change is *intended* to move\n"
        "             counters) and exit 0\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xlvm::report;

    std::string freshPath, goldenPath;
    GoldenOptions opts;
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--update") == 0) {
            update = true;
        } else if (std::strcmp(a, "--rtol") == 0 && i + 1 < argc) {
            opts.rtol = std::strtod(argv[++i], nullptr);
        } else if (std::strncmp(a, "--rtol=", 7) == 0) {
            opts.rtol = std::strtod(a + 7, nullptr);
        } else if (std::strcmp(a, "--ignore-section") == 0 && i + 1 < argc) {
            opts.ignoreKeys.push_back(argv[++i]);
        } else if (std::strncmp(a, "--ignore-section=", 17) == 0) {
            opts.ignoreKeys.push_back(a + 17);
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
            usage(argv[0]);
            return 2;
        } else if (freshPath.empty()) {
            freshPath = a;
        } else if (goldenPath.empty()) {
            goldenPath = a;
        } else {
            std::fprintf(stderr, "%s: too many arguments\n", argv[0]);
            usage(argv[0]);
            return 2;
        }
    }
    if (freshPath.empty() || goldenPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::string err;
    Json fresh;
    if (!loadReport(freshPath, &fresh, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }

    Json golden;
    bool haveGolden = loadReport(goldenPath, &golden, &err);
    if (!haveGolden && !update) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }

    auto writeGolden = [&]() -> int {
        std::ofstream f(goldenPath, std::ios::binary | std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         goldenPath.c_str());
            return 2;
        }
        std::string payload = fresh.dump(2) + "\n";
        f.write(payload.data(), std::streamsize(payload.size()));
        f.flush();
        if (!f) {
            std::fprintf(stderr, "%s: write failed for %s\n", argv[0],
                         goldenPath.c_str());
            return 2;
        }
        std::printf("updated %s from %s\n", goldenPath.c_str(),
                    freshPath.c_str());
        return 0;
    };

    if (!haveGolden)
        return writeGolden(); // --update bootstraps a missing golden

    std::vector<Drift> drifts = compareReports(golden, fresh, opts);
    if (drifts.empty()) {
        std::printf("OK: %s matches %s\n", freshPath.c_str(),
                    goldenPath.c_str());
        return 0;
    }

    if (update)
        return writeGolden();

    std::string diff = formatDriftDiff(goldenPath, freshPath, drifts);
    std::fwrite(diff.data(), 1, diff.size(), stdout);
    std::printf("FAIL: %zu drifted counter%s between %s and %s\n",
                drifts.size(), drifts.size() == 1 ? "" : "s",
                freshPath.c_str(), goldenPath.c_str());
    return 1;
}
