/**
 * @file
 * xlvm-prof — inspector for deterministic sampling profiles.
 *
 * Operates on the self-describing profile JSON written by the bench
 * harness's --profile flag (or XLVM_PROFILE). Because the sample clock
 * is the modeled cycle counter, two runs of the same configuration
 * produce byte-identical profiles — diffing two of these files is a
 * meaningful regression test. Exit codes: 0 ok, 1 command failure,
 * 2 usage/I-O error.
 *
 *   xlvm-prof dump       <profile.json>             every sample site
 *   xlvm-prof top        <profile.json> [-n N]      hottest (phase,
 *                                                   context) cells
 *   xlvm-prof tree       <profile.json>             phase > context >
 *                                                   pc hierarchy
 *   xlvm-prof folded     <profile.json> [-o out]    collapsed stacks
 *                                                   (flamegraph.pl /
 *                                                   speedscope)
 *   xlvm-prof counters   <profile.json> --chrome out.json
 *                                                   phase counter
 *                                                   tracks (Perfetto)
 *   xlvm-prof top-deopts <profile.json> [-n N]      guard sites by
 *                                                   fail count, with
 *                                                   trace/bytecode
 *                                                   provenance
 *
 * All aggregating commands accept --json for machine-readable output.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report/golden.h"
#include "report/profile_export.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> <profile.json> [options]\n"
        "\n"
        "commands:\n"
        "  dump        print every sample site, one line each\n"
        "  top         hottest (phase, context) attribution cells\n"
        "  tree        phase > context > pc hierarchy with counts\n"
        "  folded      collapsed-stack text for flamegraph.pl or\n"
        "              speedscope (-o out.txt, \"-\" = stdout)\n"
        "  counters    Chrome trace-event counter tracks\n"
        "              (--chrome out.json, open in ui.perfetto.dev)\n"
        "  top-deopts  guard sites by failure count, with trace and\n"
        "              bytecode provenance\n"
        "\n"
        "options:\n"
        "  -n, --top N  keep the top N rows (default 10, 0 = all)\n"
        "  --json       machine-readable output\n"
        "  -o PATH      output path for folded (default stdout)\n"
        "  --chrome PATH  output path for counters\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xlvm::report;

    if (argc >= 2 && (std::strcmp(argv[1], "-h") == 0 ||
                      std::strcmp(argv[1], "--help") == 0)) {
        usage(argv[0]);
        return 0;
    }
    if (argc < 3) {
        usage(argv[0]);
        return 2;
    }
    std::string command = argv[1];
    std::string inPath;
    std::string outPath;
    size_t topN = 10;
    bool jsonOut = false;

    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        if ((std::strcmp(a, "-n") == 0 || std::strcmp(a, "--top") == 0) &&
            i + 1 < argc) {
            topN = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(a, "--json") == 0) {
            jsonOut = true;
        } else if (std::strcmp(a, "-o") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(a, "--chrome") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (a[0] == '-' && a[1] != '\0') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
            usage(argv[0]);
            return 2;
        } else if (inPath.empty()) {
            inPath = a;
        } else {
            std::fprintf(stderr, "%s: too many arguments\n", argv[0]);
            return 2;
        }
    }
    if (inPath.empty()) {
        std::fprintf(stderr, "%s: no profile file given\n", argv[0]);
        return 2;
    }

    std::string err;
    Json doc;
    if (!loadReport(inPath, &doc, &err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    const Json *kind = doc.get("kind");
    if (!kind || kind->asString() != "xlvm-profile" || !doc.get("runs")) {
        std::fprintf(stderr,
                     "%s: %s is not an xlvm profile (kind=xlvm-profile "
                     "with a runs array expected)\n",
                     argv[0], inPath.c_str());
        return 2;
    }

    if (command == "dump") {
        std::string text =
            jsonOut ? doc.dump(2) + "\n" : formatProfileDump(doc);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (command == "top") {
        Json top = profileTop(doc, topN);
        std::string text =
            jsonOut ? top.dump(2) + "\n" : formatProfileTop(top);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (command == "tree") {
        Json tree = profileTree(doc);
        std::string text =
            jsonOut ? tree.dump(2) + "\n" : formatProfileTree(tree);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }
    if (command == "folded") {
        std::string text = profileFolded(doc);
        if (!writeProfileText(text, outPath.empty() ? "-" : outPath,
                              &err)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            return 1;
        }
        return 0;
    }
    if (command == "counters") {
        if (outPath.empty()) {
            std::fprintf(stderr,
                         "%s: counters needs an output path "
                         "(--chrome out.json)\n",
                         argv[0]);
            return 2;
        }
        Json counters = profileChromeCounters(doc);
        if (!writeProfileText(counters.dump(2) + "\n", outPath, &err)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
            return 1;
        }
        return 0;
    }
    if (command == "top-deopts") {
        Json deopts = profileTopDeopts(doc, topN);
        std::string text =
            jsonOut ? deopts.dump(2) + "\n" : formatProfileDeopts(deopts);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                 command.c_str());
    usage(argv[0]);
    return 2;
}
