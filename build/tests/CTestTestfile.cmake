# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_xlayer[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_jit_ir[1]_include.cmake")
include("/root/repo/build/tests/test_jit_opt[1]_include.cmake")
include("/root/repo/build/tests/test_minipy[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_minirkt[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
