file(REMOVE_RECURSE
  "CMakeFiles/test_jit_ir.dir/test_jit_ir.cc.o"
  "CMakeFiles/test_jit_ir.dir/test_jit_ir.cc.o.d"
  "test_jit_ir"
  "test_jit_ir.pdb"
  "test_jit_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
