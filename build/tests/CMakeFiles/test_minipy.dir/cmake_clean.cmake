file(REMOVE_RECURSE
  "CMakeFiles/test_minipy.dir/test_minipy.cc.o"
  "CMakeFiles/test_minipy.dir/test_minipy.cc.o.d"
  "test_minipy"
  "test_minipy.pdb"
  "test_minipy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minipy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
