# Empty compiler generated dependencies file for test_minipy.
# This may be replaced when dependencies are built.
