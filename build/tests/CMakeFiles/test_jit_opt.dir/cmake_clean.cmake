file(REMOVE_RECURSE
  "CMakeFiles/test_jit_opt.dir/test_jit_opt.cc.o"
  "CMakeFiles/test_jit_opt.dir/test_jit_opt.cc.o.d"
  "test_jit_opt"
  "test_jit_opt.pdb"
  "test_jit_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
