# Empty dependencies file for test_jit_opt.
# This may be replaced when dependencies are built.
