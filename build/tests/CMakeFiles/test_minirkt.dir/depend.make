# Empty dependencies file for test_minirkt.
# This may be replaced when dependencies are built.
