file(REMOVE_RECURSE
  "CMakeFiles/test_minirkt.dir/test_minirkt.cc.o"
  "CMakeFiles/test_minirkt.dir/test_minirkt.cc.o.d"
  "test_minirkt"
  "test_minirkt.pdb"
  "test_minirkt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minirkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
