file(REMOVE_RECURSE
  "CMakeFiles/test_xlayer.dir/test_xlayer.cc.o"
  "CMakeFiles/test_xlayer.dir/test_xlayer.cc.o.d"
  "test_xlayer"
  "test_xlayer.pdb"
  "test_xlayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
