# Empty compiler generated dependencies file for test_xlayer.
# This may be replaced when dependencies are built.
