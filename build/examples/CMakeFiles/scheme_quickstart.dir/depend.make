# Empty dependencies file for scheme_quickstart.
# This may be replaced when dependencies are built.
