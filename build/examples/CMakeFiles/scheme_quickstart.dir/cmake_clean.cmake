file(REMOVE_RECURSE
  "CMakeFiles/scheme_quickstart.dir/scheme_quickstart.cpp.o"
  "CMakeFiles/scheme_quickstart.dir/scheme_quickstart.cpp.o.d"
  "scheme_quickstart"
  "scheme_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
