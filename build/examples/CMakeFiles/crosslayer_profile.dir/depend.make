# Empty dependencies file for crosslayer_profile.
# This may be replaced when dependencies are built.
