file(REMOVE_RECURSE
  "CMakeFiles/crosslayer_profile.dir/crosslayer_profile.cpp.o"
  "CMakeFiles/crosslayer_profile.dir/crosslayer_profile.cpp.o.d"
  "crosslayer_profile"
  "crosslayer_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosslayer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
