file(REMOVE_RECURSE
  "CMakeFiles/compare_vms.dir/compare_vms.cpp.o"
  "CMakeFiles/compare_vms.dir/compare_vms.cpp.o.d"
  "compare_vms"
  "compare_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
