# Empty compiler generated dependencies file for compare_vms.
# This may be replaced when dependencies are built.
