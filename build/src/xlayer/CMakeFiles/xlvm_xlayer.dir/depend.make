# Empty dependencies file for xlvm_xlayer.
# This may be replaced when dependencies are built.
