file(REMOVE_RECURSE
  "libxlvm_xlayer.a"
)
