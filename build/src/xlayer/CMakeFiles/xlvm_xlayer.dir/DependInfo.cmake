
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xlayer/aot_profiler.cc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/aot_profiler.cc.o" "gcc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/aot_profiler.cc.o.d"
  "/root/repo/src/xlayer/event_profiler.cc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/event_profiler.cc.o" "gcc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/event_profiler.cc.o.d"
  "/root/repo/src/xlayer/irnode_profiler.cc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/irnode_profiler.cc.o" "gcc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/irnode_profiler.cc.o.d"
  "/root/repo/src/xlayer/phase_profiler.cc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/phase_profiler.cc.o" "gcc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/phase_profiler.cc.o.d"
  "/root/repo/src/xlayer/work_profiler.cc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/work_profiler.cc.o" "gcc" "src/xlayer/CMakeFiles/xlvm_xlayer.dir/work_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xlvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xlvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
