file(REMOVE_RECURSE
  "CMakeFiles/xlvm_xlayer.dir/aot_profiler.cc.o"
  "CMakeFiles/xlvm_xlayer.dir/aot_profiler.cc.o.d"
  "CMakeFiles/xlvm_xlayer.dir/event_profiler.cc.o"
  "CMakeFiles/xlvm_xlayer.dir/event_profiler.cc.o.d"
  "CMakeFiles/xlvm_xlayer.dir/irnode_profiler.cc.o"
  "CMakeFiles/xlvm_xlayer.dir/irnode_profiler.cc.o.d"
  "CMakeFiles/xlvm_xlayer.dir/phase_profiler.cc.o"
  "CMakeFiles/xlvm_xlayer.dir/phase_profiler.cc.o.d"
  "CMakeFiles/xlvm_xlayer.dir/work_profiler.cc.o"
  "CMakeFiles/xlvm_xlayer.dir/work_profiler.cc.o.d"
  "libxlvm_xlayer.a"
  "libxlvm_xlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_xlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
