
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/backend.cc" "src/jit/CMakeFiles/xlvm_jit.dir/backend.cc.o" "gcc" "src/jit/CMakeFiles/xlvm_jit.dir/backend.cc.o.d"
  "/root/repo/src/jit/eval.cc" "src/jit/CMakeFiles/xlvm_jit.dir/eval.cc.o" "gcc" "src/jit/CMakeFiles/xlvm_jit.dir/eval.cc.o.d"
  "/root/repo/src/jit/ir.cc" "src/jit/CMakeFiles/xlvm_jit.dir/ir.cc.o" "gcc" "src/jit/CMakeFiles/xlvm_jit.dir/ir.cc.o.d"
  "/root/repo/src/jit/opt.cc" "src/jit/CMakeFiles/xlvm_jit.dir/opt.cc.o" "gcc" "src/jit/CMakeFiles/xlvm_jit.dir/opt.cc.o.d"
  "/root/repo/src/jit/recorder.cc" "src/jit/CMakeFiles/xlvm_jit.dir/recorder.cc.o" "gcc" "src/jit/CMakeFiles/xlvm_jit.dir/recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xlvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xlvm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
