file(REMOVE_RECURSE
  "libxlvm_jit.a"
)
