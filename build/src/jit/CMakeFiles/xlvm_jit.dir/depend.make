# Empty dependencies file for xlvm_jit.
# This may be replaced when dependencies are built.
