file(REMOVE_RECURSE
  "CMakeFiles/xlvm_jit.dir/backend.cc.o"
  "CMakeFiles/xlvm_jit.dir/backend.cc.o.d"
  "CMakeFiles/xlvm_jit.dir/eval.cc.o"
  "CMakeFiles/xlvm_jit.dir/eval.cc.o.d"
  "CMakeFiles/xlvm_jit.dir/ir.cc.o"
  "CMakeFiles/xlvm_jit.dir/ir.cc.o.d"
  "CMakeFiles/xlvm_jit.dir/opt.cc.o"
  "CMakeFiles/xlvm_jit.dir/opt.cc.o.d"
  "CMakeFiles/xlvm_jit.dir/recorder.cc.o"
  "CMakeFiles/xlvm_jit.dir/recorder.cc.o.d"
  "libxlvm_jit.a"
  "libxlvm_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
