# Empty dependencies file for xlvm_vm.
# This may be replaced when dependencies are built.
