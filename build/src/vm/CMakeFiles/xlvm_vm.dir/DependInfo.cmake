
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/blackhole.cc" "src/vm/CMakeFiles/xlvm_vm.dir/blackhole.cc.o" "gcc" "src/vm/CMakeFiles/xlvm_vm.dir/blackhole.cc.o.d"
  "/root/repo/src/vm/executor.cc" "src/vm/CMakeFiles/xlvm_vm.dir/executor.cc.o" "gcc" "src/vm/CMakeFiles/xlvm_vm.dir/executor.cc.o.d"
  "/root/repo/src/vm/executor_calls.cc" "src/vm/CMakeFiles/xlvm_vm.dir/executor_calls.cc.o" "gcc" "src/vm/CMakeFiles/xlvm_vm.dir/executor_calls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obj/CMakeFiles/xlvm_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/xlayer/CMakeFiles/xlvm_xlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/xlvm_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/xlvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/xlvm_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xlvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xlvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
