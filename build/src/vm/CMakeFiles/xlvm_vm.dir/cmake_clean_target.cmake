file(REMOVE_RECURSE
  "libxlvm_vm.a"
)
