file(REMOVE_RECURSE
  "CMakeFiles/xlvm_vm.dir/blackhole.cc.o"
  "CMakeFiles/xlvm_vm.dir/blackhole.cc.o.d"
  "CMakeFiles/xlvm_vm.dir/executor.cc.o"
  "CMakeFiles/xlvm_vm.dir/executor.cc.o.d"
  "CMakeFiles/xlvm_vm.dir/executor_calls.cc.o"
  "CMakeFiles/xlvm_vm.dir/executor_calls.cc.o.d"
  "libxlvm_vm.a"
  "libxlvm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
