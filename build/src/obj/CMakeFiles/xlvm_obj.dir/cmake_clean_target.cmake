file(REMOVE_RECURSE
  "libxlvm_obj.a"
)
