file(REMOVE_RECURSE
  "CMakeFiles/xlvm_obj.dir/space.cc.o"
  "CMakeFiles/xlvm_obj.dir/space.cc.o.d"
  "CMakeFiles/xlvm_obj.dir/space_containers.cc.o"
  "CMakeFiles/xlvm_obj.dir/space_containers.cc.o.d"
  "CMakeFiles/xlvm_obj.dir/space_proto.cc.o"
  "CMakeFiles/xlvm_obj.dir/space_proto.cc.o.d"
  "CMakeFiles/xlvm_obj.dir/wobject.cc.o"
  "CMakeFiles/xlvm_obj.dir/wobject.cc.o.d"
  "libxlvm_obj.a"
  "libxlvm_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
