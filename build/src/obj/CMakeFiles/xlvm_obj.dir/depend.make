# Empty dependencies file for xlvm_obj.
# This may be replaced when dependencies are built.
