file(REMOVE_RECURSE
  "libxlvm_minipy.a"
)
