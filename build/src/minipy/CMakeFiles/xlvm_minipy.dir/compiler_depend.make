# Empty compiler generated dependencies file for xlvm_minipy.
# This may be replaced when dependencies are built.
