
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minipy/builtins.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/builtins.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/builtins.cc.o.d"
  "/root/repo/src/minipy/compiler.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/compiler.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/compiler.cc.o.d"
  "/root/repo/src/minipy/interp.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/interp.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/interp.cc.o.d"
  "/root/repo/src/minipy/interp_loop.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/interp_loop.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/interp_loop.cc.o.d"
  "/root/repo/src/minipy/lexer.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/lexer.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/lexer.cc.o.d"
  "/root/repo/src/minipy/parser.cc" "src/minipy/CMakeFiles/xlvm_minipy.dir/parser.cc.o" "gcc" "src/minipy/CMakeFiles/xlvm_minipy.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/xlvm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/xlvm_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/xlayer/CMakeFiles/xlvm_xlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/xlvm_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/xlvm_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/xlvm_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xlvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xlvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
