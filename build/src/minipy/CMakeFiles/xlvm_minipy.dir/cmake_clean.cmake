file(REMOVE_RECURSE
  "CMakeFiles/xlvm_minipy.dir/builtins.cc.o"
  "CMakeFiles/xlvm_minipy.dir/builtins.cc.o.d"
  "CMakeFiles/xlvm_minipy.dir/compiler.cc.o"
  "CMakeFiles/xlvm_minipy.dir/compiler.cc.o.d"
  "CMakeFiles/xlvm_minipy.dir/interp.cc.o"
  "CMakeFiles/xlvm_minipy.dir/interp.cc.o.d"
  "CMakeFiles/xlvm_minipy.dir/interp_loop.cc.o"
  "CMakeFiles/xlvm_minipy.dir/interp_loop.cc.o.d"
  "CMakeFiles/xlvm_minipy.dir/lexer.cc.o"
  "CMakeFiles/xlvm_minipy.dir/lexer.cc.o.d"
  "CMakeFiles/xlvm_minipy.dir/parser.cc.o"
  "CMakeFiles/xlvm_minipy.dir/parser.cc.o.d"
  "libxlvm_minipy.a"
  "libxlvm_minipy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_minipy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
