file(REMOVE_RECURSE
  "CMakeFiles/xlvm_driver.dir/runner.cc.o"
  "CMakeFiles/xlvm_driver.dir/runner.cc.o.d"
  "libxlvm_driver.a"
  "libxlvm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
