file(REMOVE_RECURSE
  "libxlvm_driver.a"
)
