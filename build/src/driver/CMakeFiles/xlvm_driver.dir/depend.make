# Empty dependencies file for xlvm_driver.
# This may be replaced when dependencies are built.
