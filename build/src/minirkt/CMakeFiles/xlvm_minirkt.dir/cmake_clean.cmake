file(REMOVE_RECURSE
  "CMakeFiles/xlvm_minirkt.dir/compiler.cc.o"
  "CMakeFiles/xlvm_minirkt.dir/compiler.cc.o.d"
  "CMakeFiles/xlvm_minirkt.dir/reader.cc.o"
  "CMakeFiles/xlvm_minirkt.dir/reader.cc.o.d"
  "libxlvm_minirkt.a"
  "libxlvm_minirkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_minirkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
