file(REMOVE_RECURSE
  "libxlvm_minirkt.a"
)
