# Empty dependencies file for xlvm_minirkt.
# This may be replaced when dependencies are built.
