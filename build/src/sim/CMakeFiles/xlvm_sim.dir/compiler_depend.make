# Empty compiler generated dependencies file for xlvm_sim.
# This may be replaced when dependencies are built.
