file(REMOVE_RECURSE
  "CMakeFiles/xlvm_sim.dir/branch_pred.cc.o"
  "CMakeFiles/xlvm_sim.dir/branch_pred.cc.o.d"
  "CMakeFiles/xlvm_sim.dir/cache.cc.o"
  "CMakeFiles/xlvm_sim.dir/cache.cc.o.d"
  "CMakeFiles/xlvm_sim.dir/core.cc.o"
  "CMakeFiles/xlvm_sim.dir/core.cc.o.d"
  "libxlvm_sim.a"
  "libxlvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
