file(REMOVE_RECURSE
  "libxlvm_sim.a"
)
