file(REMOVE_RECURSE
  "CMakeFiles/xlvm_common.dir/stats.cc.o"
  "CMakeFiles/xlvm_common.dir/stats.cc.o.d"
  "libxlvm_common.a"
  "libxlvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
