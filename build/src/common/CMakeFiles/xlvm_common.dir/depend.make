# Empty dependencies file for xlvm_common.
# This may be replaced when dependencies are built.
