file(REMOVE_RECURSE
  "libxlvm_common.a"
)
