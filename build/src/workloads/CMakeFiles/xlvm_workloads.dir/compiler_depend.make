# Empty compiler generated dependencies file for xlvm_workloads.
# This may be replaced when dependencies are built.
