file(REMOVE_RECURSE
  "CMakeFiles/xlvm_workloads.dir/clbg.cc.o"
  "CMakeFiles/xlvm_workloads.dir/clbg.cc.o.d"
  "CMakeFiles/xlvm_workloads.dir/clbg_rkt.cc.o"
  "CMakeFiles/xlvm_workloads.dir/clbg_rkt.cc.o.d"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_a.cc.o"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_a.cc.o.d"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_b.cc.o"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_b.cc.o.d"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_c.cc.o"
  "CMakeFiles/xlvm_workloads.dir/pypy_suite_c.cc.o.d"
  "CMakeFiles/xlvm_workloads.dir/workloads.cc.o"
  "CMakeFiles/xlvm_workloads.dir/workloads.cc.o.d"
  "libxlvm_workloads.a"
  "libxlvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
