
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/clbg.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/clbg.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/clbg.cc.o.d"
  "/root/repo/src/workloads/clbg_rkt.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/clbg_rkt.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/clbg_rkt.cc.o.d"
  "/root/repo/src/workloads/pypy_suite_a.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_a.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_a.cc.o.d"
  "/root/repo/src/workloads/pypy_suite_b.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_b.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_b.cc.o.d"
  "/root/repo/src/workloads/pypy_suite_c.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_c.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/pypy_suite_c.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/xlvm_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/xlvm_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xlvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
