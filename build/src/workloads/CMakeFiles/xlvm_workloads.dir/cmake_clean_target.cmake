file(REMOVE_RECURSE
  "libxlvm_workloads.a"
)
