file(REMOVE_RECURSE
  "libxlvm_rt.a"
)
