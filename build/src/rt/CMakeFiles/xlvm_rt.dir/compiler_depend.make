# Empty compiler generated dependencies file for xlvm_rt.
# This may be replaced when dependencies are built.
