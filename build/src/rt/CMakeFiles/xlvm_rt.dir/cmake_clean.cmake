file(REMOVE_RECURSE
  "CMakeFiles/xlvm_rt.dir/aot_registry.cc.o"
  "CMakeFiles/xlvm_rt.dir/aot_registry.cc.o.d"
  "CMakeFiles/xlvm_rt.dir/rbigint.cc.o"
  "CMakeFiles/xlvm_rt.dir/rbigint.cc.o.d"
  "CMakeFiles/xlvm_rt.dir/rstr.cc.o"
  "CMakeFiles/xlvm_rt.dir/rstr.cc.o.d"
  "libxlvm_rt.a"
  "libxlvm_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
