file(REMOVE_RECURSE
  "CMakeFiles/xlvm_gc.dir/heap.cc.o"
  "CMakeFiles/xlvm_gc.dir/heap.cc.o.d"
  "libxlvm_gc.a"
  "libxlvm_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
