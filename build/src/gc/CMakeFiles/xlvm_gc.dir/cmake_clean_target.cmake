file(REMOVE_RECURSE
  "libxlvm_gc.a"
)
