# Empty dependencies file for xlvm_gc.
# This may be replaced when dependencies are built.
