file(REMOVE_RECURSE
  "libxlvm_native.a"
)
