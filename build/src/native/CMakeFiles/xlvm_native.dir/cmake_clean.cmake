file(REMOVE_RECURSE
  "CMakeFiles/xlvm_native.dir/clbg_native.cc.o"
  "CMakeFiles/xlvm_native.dir/clbg_native.cc.o.d"
  "libxlvm_native.a"
  "libxlvm_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlvm_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
