# Empty compiler generated dependencies file for xlvm_native.
# This may be replaced when dependencies are built.
