# Empty dependencies file for ablation_instrumentation.
# This may be replaced when dependencies are built.
