file(REMOVE_RECURSE
  "CMakeFiles/ablation_instrumentation.dir/ablation_instrumentation.cc.o"
  "CMakeFiles/ablation_instrumentation.dir/ablation_instrumentation.cc.o.d"
  "ablation_instrumentation"
  "ablation_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
