file(REMOVE_RECURSE
  "CMakeFiles/fig3_phase_timeline.dir/fig3_phase_timeline.cc.o"
  "CMakeFiles/fig3_phase_timeline.dir/fig3_phase_timeline.cc.o.d"
  "fig3_phase_timeline"
  "fig3_phase_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_phase_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
