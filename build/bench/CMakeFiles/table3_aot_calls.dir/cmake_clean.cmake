file(REMOVE_RECURSE
  "CMakeFiles/table3_aot_calls.dir/table3_aot_calls.cc.o"
  "CMakeFiles/table3_aot_calls.dir/table3_aot_calls.cc.o.d"
  "table3_aot_calls"
  "table3_aot_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_aot_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
