# Empty compiler generated dependencies file for table3_aot_calls.
# This may be replaced when dependencies are built.
