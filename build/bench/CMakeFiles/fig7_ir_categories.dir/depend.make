# Empty dependencies file for fig7_ir_categories.
# This may be replaced when dependencies are built.
