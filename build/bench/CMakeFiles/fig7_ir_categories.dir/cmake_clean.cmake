file(REMOVE_RECURSE
  "CMakeFiles/fig7_ir_categories.dir/fig7_ir_categories.cc.o"
  "CMakeFiles/fig7_ir_categories.dir/fig7_ir_categories.cc.o.d"
  "fig7_ir_categories"
  "fig7_ir_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ir_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
