file(REMOVE_RECURSE
  "CMakeFiles/table1_pypy_suite.dir/table1_pypy_suite.cc.o"
  "CMakeFiles/table1_pypy_suite.dir/table1_pypy_suite.cc.o.d"
  "table1_pypy_suite"
  "table1_pypy_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pypy_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
