file(REMOVE_RECURSE
  "CMakeFiles/gbench_sim_throughput.dir/gbench_sim_throughput.cc.o"
  "CMakeFiles/gbench_sim_throughput.dir/gbench_sim_throughput.cc.o.d"
  "gbench_sim_throughput"
  "gbench_sim_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
