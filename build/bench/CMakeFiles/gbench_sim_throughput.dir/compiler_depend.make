# Empty compiler generated dependencies file for gbench_sim_throughput.
# This may be replaced when dependencies are built.
