file(REMOVE_RECURSE
  "CMakeFiles/fig4_clbg_phases.dir/fig4_clbg_phases.cc.o"
  "CMakeFiles/fig4_clbg_phases.dir/fig4_clbg_phases.cc.o.d"
  "fig4_clbg_phases"
  "fig4_clbg_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_clbg_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
