# Empty dependencies file for fig4_clbg_phases.
# This may be replaced when dependencies are built.
