file(REMOVE_RECURSE
  "CMakeFiles/fig9_asm_per_ir.dir/fig9_asm_per_ir.cc.o"
  "CMakeFiles/fig9_asm_per_ir.dir/fig9_asm_per_ir.cc.o.d"
  "fig9_asm_per_ir"
  "fig9_asm_per_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_asm_per_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
