# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_asm_per_ir.
