# Empty dependencies file for fig9_asm_per_ir.
# This may be replaced when dependencies are built.
