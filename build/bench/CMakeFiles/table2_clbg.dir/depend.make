# Empty dependencies file for table2_clbg.
# This may be replaced when dependencies are built.
