file(REMOVE_RECURSE
  "CMakeFiles/table2_clbg.dir/table2_clbg.cc.o"
  "CMakeFiles/table2_clbg.dir/table2_clbg.cc.o.d"
  "table2_clbg"
  "table2_clbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_clbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
