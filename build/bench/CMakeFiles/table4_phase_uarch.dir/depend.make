# Empty dependencies file for table4_phase_uarch.
# This may be replaced when dependencies are built.
