file(REMOVE_RECURSE
  "CMakeFiles/table4_phase_uarch.dir/table4_phase_uarch.cc.o"
  "CMakeFiles/table4_phase_uarch.dir/table4_phase_uarch.cc.o.d"
  "table4_phase_uarch"
  "table4_phase_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_phase_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
