# Empty dependencies file for fig8_ir_histogram.
# This may be replaced when dependencies are built.
