file(REMOVE_RECURSE
  "CMakeFiles/fig8_ir_histogram.dir/fig8_ir_histogram.cc.o"
  "CMakeFiles/fig8_ir_histogram.dir/fig8_ir_histogram.cc.o.d"
  "fig8_ir_histogram"
  "fig8_ir_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ir_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
