file(REMOVE_RECURSE
  "CMakeFiles/fig2_phase_breakdown.dir/fig2_phase_breakdown.cc.o"
  "CMakeFiles/fig2_phase_breakdown.dir/fig2_phase_breakdown.cc.o.d"
  "fig2_phase_breakdown"
  "fig2_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
